//===- tests/WarmStartTest.cpp - Warm-start determinism and semantics ------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// End-to-end coverage of the online -> PGO bridge (ISSUE 8): the
// snapshotProfile()/warmStart() pair on AdaptiveSystem, the harness's
// RunConfig::WarmStart/CaptureProfile plumbing, the `profile-load`
// trace event, and the determinism contracts — a captured profile is a
// pure observation, a warm start replays identically, grids stay
// byte-identical across thread counts, and a stale profile degrades
// gracefully through decay/deopt rather than failing the run.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/CsvExport.h"
#include "harness/SteadyState.h"
#include "profile/ProfileIo.h"

#include <gtest/gtest.h>

#include <memory>

using namespace aoci;

namespace {

RunConfig smallConfig(const std::string &Workload, double Scale = 0.15) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  return Config;
}

/// Runs \p Config with capture on and parses the snapshot.
std::shared_ptr<const ProfileData> captureProfile(RunConfig Config) {
  Config.CaptureProfile = true;
  const RunResult R = runExperiment(Config);
  auto Profile = std::make_shared<ProfileData>();
  std::string Error;
  EXPECT_TRUE(parseProfile(R.CapturedProfile, *Profile, Error)) << Error;
  return Profile;
}

} // namespace

TEST(WarmStartTest, SnapshotAppliesBackLossless) {
  // A snapshot taken against a program must re-apply in full against
  // the same program: every section resolves, nothing drops.
  Workload W = makeWorkload("jess", WorkloadParams{1, 0.15});
  auto Policy = makePolicy(PolicyKind::Fixed, 3);
  ProfileData Snapshot;
  {
    VirtualMachine VM(W.Prog);
    AdaptiveSystem Aos(VM, *Policy);
    Aos.attach();
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run();
    Snapshot = Aos.snapshotProfile("jess");
    ASSERT_FALSE(Snapshot.DcgTraces.empty());
    ASSERT_FALSE(Snapshot.HotMethods.empty());
  }

  Workload W2 = makeWorkload("jess", WorkloadParams{1, 0.15});
  VirtualMachine VM(W2.Prog);
  AdaptiveSystem Aos(VM, *Policy);
  Aos.attach();
  const WarmStartStats Stats = Aos.warmStart(Snapshot);
  EXPECT_EQ(Stats.TracesApplied, Snapshot.DcgTraces.size());
  EXPECT_EQ(Stats.HotMethodsApplied, Snapshot.HotMethods.size());
  EXPECT_EQ(Stats.RefusalsApplied, Snapshot.Refusals.size());
  EXPECT_EQ(Stats.dropped(), 0u);
  EXPECT_EQ(Stats.ThresholdMismatches, 0u)
      << "snapshot and consumer share the default configuration";
  EXPECT_EQ(Aos.dcg().numTraces(), Snapshot.DcgTraces.size());
  EXPECT_FALSE(Aos.rules().empty())
      << "warm start codifies rules before the first bytecode runs";
}

TEST(WarmStartTest, UnresolvableEntriesDropNeverFail) {
  Workload W = makeWorkload("jess", WorkloadParams{1, 0.15});
  auto Policy = makePolicy(PolicyKind::Fixed, 3);
  VirtualMachine VM(W.Prog);
  AdaptiveSystem Aos(VM, *Policy);
  Aos.attach();
  ProfileData Stale;
  Stale.DcgTraces.push_back({5.0, {{"No.suchCaller", 3}}, "No.suchCallee"});
  Stale.HotMethods.push_back({9.0, "No.suchMethod"});
  Stale.Refusals.push_back({"No.compiled", "No.caller", 1, "No.callee"});
  const WarmStartStats Stats = Aos.warmStart(Stale);
  EXPECT_EQ(Stats.applied(), 0u);
  EXPECT_EQ(Stats.TracesDropped, 1u);
  EXPECT_EQ(Stats.HotMethodsDropped, 1u);
  EXPECT_EQ(Stats.RefusalsDropped, 1u);
  EXPECT_EQ(Aos.dcg().numTraces(), 0u);
}

TEST(WarmStartTest, CaptureIsAPureObservation) {
  RunConfig Cold = smallConfig("db");
  const RunResult Plain = runExperiment(Cold);
  Cold.CaptureProfile = true;
  const RunResult Captured = runExperiment(Cold);
  EXPECT_EQ(Plain.WallCycles, Captured.WallCycles);
  EXPECT_EQ(Plain.ProgramResult, Captured.ProgramResult);
  EXPECT_EQ(Plain.OptCompileCycles, Captured.OptCompileCycles);
  EXPECT_TRUE(Plain.CapturedProfile.empty());
  EXPECT_FALSE(Captured.CapturedProfile.empty());
}

TEST(WarmStartTest, WarmRunIsDeterministic) {
  auto Profile = captureProfile(smallConfig("db"));
  RunConfig Warm = smallConfig("db");
  Warm.WarmStart = Profile;
  const RunResult A = runExperiment(Warm);
  const RunResult B = runExperiment(Warm);
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.ProgramResult, B.ProgramResult);
  EXPECT_EQ(A.WarmStartApplied, B.WarmStartApplied);
  EXPECT_GT(A.WarmStartApplied, 0u);
  EXPECT_TRUE(A.WarmStarted);
}

TEST(WarmStartTest, WarmStartPreservesProgramSemantics) {
  // Inlining must never change what the program computes, profile or
  // no profile — the simulated result is configuration-invariant.
  auto Profile = captureProfile(smallConfig("jess"));
  RunConfig Cold = smallConfig("jess");
  RunConfig Warm = Cold;
  Warm.WarmStart = Profile;
  const RunResult C = runExperiment(Cold);
  const RunResult W = runExperiment(Warm);
  EXPECT_EQ(C.ProgramResult, W.ProgramResult);
}

TEST(WarmStartTest, WarmStartReachesSteadyStateSooner) {
  // The headline claim, pinned on one robust workload at test scale
  // (the bench sweeps all eight): re-seeding from the same run's
  // profile front-loads the decisions the cold run had to learn.
  RunConfig Cold = smallConfig("jess", 0.5);
  auto Profile = captureProfile(Cold);
  TraceSink ColdSink;
  ColdSink.enable(steadyStateKindMask());
  Cold.Trace = &ColdSink;
  const RunResult ColdR = runExperiment(Cold);
  const SteadyStateResult ColdV = detectSteadyState(ColdSink, ColdR.WallCycles);

  RunConfig Warm = smallConfig("jess", 0.5);
  Warm.WarmStart = Profile;
  TraceSink WarmSink;
  WarmSink.enable(steadyStateKindMask());
  Warm.Trace = &WarmSink;
  const RunResult WarmR = runExperiment(Warm);
  const SteadyStateResult WarmV = detectSteadyState(WarmSink, WarmR.WallCycles);

  ASSERT_TRUE(ColdV.Reached) << ColdV.Why;
  ASSERT_TRUE(WarmV.Reached) << WarmV.Why;
  EXPECT_LT(WarmV.WarmupCycles, ColdV.WarmupCycles);
  EXPECT_LT(WarmR.OptCompileCycles, ColdR.OptCompileCycles)
      << "the warm run re-learns less, so it recompiles less";
}

TEST(WarmStartTest, StaleProfileDegradesGracefully) {
  // Train on a phase-shifted input (different workload seed), then
  // warm-start the production run from it with OSR and a bounded code
  // cache on: wrong decisions must be walked back through decay and
  // deopt, and the run must still compute the cold run's result.
  RunConfig Train = smallConfig("jess", 0.3);
  Train.Params.Seed = 99;
  auto StaleProfile = captureProfile(Train);
  ASSERT_GT(StaleProfile->DcgTraces.size() + StaleProfile->HotMethods.size(),
            0u);

  RunConfig Prod = smallConfig("jess", 0.3);
  Prod.Aos.Osr.Enabled = true;
  Prod.Model.CodeCache.CapacityBytes = 6000;
  // Stock decay needs ~10k samples to drop a seeded entry — more than
  // this run delivers. Tighten it so the fade-out is observable, as the
  // phase-flip scenario test does.
  Prod.Aos.DecayPeriodSamples = 16;
  Prod.Aos.DecayFactor = 0.5;
  const RunResult ColdR = runExperiment(Prod);
  Prod.WarmStart = StaleProfile;
  const RunResult StaleR = runExperiment(Prod);

  EXPECT_EQ(StaleR.ProgramResult, ColdR.ProgramResult);
  EXPECT_GT(StaleR.WarmStartApplied, 0u)
      << "workload method names are seed-independent, so entries resolve";
  EXPECT_GT(StaleR.DecayEntriesDropped, 0u)
      << "stale DCG weight must fade out through the decay organizer";
}

TEST(WarmStartTest, ProfileLoadEventEmittedOnceAndUncharged) {
  auto Profile = captureProfile(smallConfig("db"));
  RunConfig Warm = smallConfig("db");
  Warm.WarmStart = Profile;

  TraceSink Sink;
  Sink.enable(TraceAllKinds);
  RunConfig Traced = Warm;
  Traced.Trace = &Sink;
  const RunResult Untraced = runExperiment(Warm);
  const RunResult TracedR = runExperiment(Traced);
  EXPECT_EQ(Untraced.WallCycles, TracedR.WallCycles)
      << "trace emission charges zero simulated cycles";

  unsigned Loads = 0;
  for (const TraceEvent &E : Sink.sortedEvents())
    if (E.Kind == TraceEventKind::ProfileLoad) {
      ++Loads;
      EXPECT_EQ(static_cast<unsigned>(E.A), ProfileFormatVersion);
      EXPECT_EQ(static_cast<uint64_t>(E.B + E.C + E.D + E.E),
                TracedR.WarmStartApplied);
      EXPECT_DOUBLE_EQ(E.X, static_cast<double>(TracedR.WarmStartDropped));
    }
  EXPECT_EQ(Loads, 1u);
}

TEST(WarmStartTest, WarmGridIsByteIdenticalAcrossThreadCounts) {
  GridConfig Config;
  Config.Workloads = {"db", "jess"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {3};
  Config.Params.Scale = 0.15;
  Config.WarmStart = captureProfile(smallConfig("db"));
  Config.CaptureProfile = true;

  const GridResults Serial = runGrid(Config);
  const GridResults Parallel = runGridParallel(Config, 4);
  EXPECT_EQ(exportCsv(Serial, Config.Policies, Config.Depths),
            exportCsv(Parallel, Config.Policies, Config.Depths));
  // Captured snapshots are simulated state, so they too must agree.
  for (const std::string &W : Serial.workloads())
    EXPECT_EQ(Serial.baseline(W).CapturedProfile,
              Parallel.baseline(W).CapturedProfile);
}
