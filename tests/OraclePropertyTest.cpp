//===- tests/OraclePropertyTest.cpp - Oracle/compiler invariants ------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Property-based testing of the inlining oracle and plan builder under
// randomized rule sets over the Figure 1 program:
//
//  - structural invariants (guard cap, unguarded-stands-alone, no large
//    or abstract targets, determinism);
//  - budget invariants of compiled plans;
//  - and the key soundness property: executing under plans built from
//    ARBITRARY rule subsets always computes the same program result.
//
//===----------------------------------------------------------------------===//

#include "bytecode/SizeClass.h"
#include "opt/Compiler.h"
#include "support/Rng.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

/// The pool of "true" traces the Figure 1 program can produce, from which
/// random rule subsets are drawn.
std::vector<Trace> tracePool(const FigureOneProgram &F) {
  std::vector<Trace> Pool;
  auto add = [&](std::vector<ContextPair> Ctx, MethodId Callee) {
    Trace T;
    T.Context = std::move(Ctx);
    T.Callee = Callee;
    Pool.push_back(std::move(T));
  };
  add({{F.RunTest, F.GetSite1}}, F.Get);
  add({{F.RunTest, F.GetSite2}}, F.Get);
  add({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode);
  add({{F.Get, F.HashCodeSite}}, F.ObjHashCode);
  add({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}}, F.MyKeyHashCode);
  add({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}}, F.ObjHashCode);
  add({{F.Get, F.EqualsSite}}, F.MyKeyEquals);
  add({{F.Get, F.EqualsSite}, {F.RunTest, F.GetSite1}}, F.MyKeyEquals);
  return Pool;
}

InlineRuleSet randomRules(const FigureOneProgram &F, Rng &R) {
  InlineRuleSet Rules;
  for (const Trace &T : tracePool(F)) {
    if (!R.nextBool(0.6))
      continue;
    InliningRule Rule;
    Rule.T = T;
    Rule.Weight = 1.0 + R.nextDouble() * 99.0;
    Rules.add(std::move(Rule));
  }
  return Rules;
}

OracleQuery hashCodeQuery(const FigureOneProgram &F, bool InsideCs1) {
  OracleQuery Q;
  Q.Enclosing = F.Get;
  Q.Site = F.HashCodeSite;
  Q.Call = F.P.method(F.Get).Body[F.HashCodeSite];
  Q.CompilationContext.push_back(ContextPair{F.Get, F.HashCodeSite});
  if (InsideCs1) {
    Q.CompilationContext.push_back(ContextPair{F.RunTest, F.GetSite1});
    Q.Depth = 1;
  }
  return Q;
}

} // namespace

class OracleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleFuzzTest, StructuralInvariantsHoldForRandomRules) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  Rng R(GetParam());

  for (int Case = 0; Case != 25; ++Case) {
    InlineRuleSet Rules = randomRules(F, R);
    ProfileDirectedOracle Oracle(F.P, CH, Rules);
    for (bool InsideCs1 : {false, true}) {
      OracleQuery Q = hashCodeQuery(F, InsideCs1);
      auto Decisions = Oracle.decide(Q);

      EXPECT_LE(Decisions.size(), Oracle.config().MaxGuardedTargets);
      unsigned Unguarded = 0;
      for (const InlineTargetDecision &D : Decisions) {
        const Method &Callee = F.P.method(D.Callee);
        EXPECT_FALSE(Callee.IsAbstract);
        EXPECT_NE(classifyMethod(Callee), SizeClass::Large);
        Unguarded += D.NeedsGuard ? 0 : 1;
      }
      if (Unguarded > 0) {
        EXPECT_EQ(Decisions.size(), 1u)
            << "an unguarded decision must stand alone";
      }

      // Determinism: the same query yields the same decisions.
      auto Again = Oracle.decide(Q);
      ASSERT_EQ(Again.size(), Decisions.size());
      for (size_t I = 0; I != Decisions.size(); ++I) {
        EXPECT_EQ(Again[I].Callee, Decisions[I].Callee);
        EXPECT_EQ(Again[I].NeedsGuard, Decisions[I].NeedsGuard);
      }

      // Guard order: weights non-increasing.
      for (size_t I = 1; I < Decisions.size(); ++I)
        EXPECT_GE(Decisions[I - 1].Weight, Decisions[I].Weight);
    }
  }
}

TEST_P(OracleFuzzTest, CompiledPlansRespectBudgets) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);
  Rng R(GetParam() ^ 0xb00b5);

  for (int Case = 0; Case != 15; ++Case) {
    InlineRuleSet Rules = randomRules(F, R);
    InlinerConfig Config;
    Config.AbsoluteUnitCap = 60 + R.nextBelow(400);
    ProfileDirectedOracle Oracle(F.P, CH, Rules, Config);
    for (MethodId Root : {F.RunTest, F.Get, F.Main}) {
      auto V = Compiler.compile(Root, OptLevel::Opt2, Oracle);
      EXPECT_LE(V->Plan.MaxDepth, Config.HardMaxDepth);
      // Tiny unconditional inlining is exempt from the expansion budget
      // but everything is bounded by the absolute cap plus at most one
      // last accepted body.
      EXPECT_LE(V->MachineUnits, Config.AbsoluteUnitCap +
                                     25 * CallSequenceSize);
      EXPECT_EQ(V->CodeBytes,
                Model.codeBytes(OptLevel::Opt2, V->MachineUnits));
    }
  }
}

TEST_P(OracleFuzzTest, ArbitraryRuleSubsetsPreserveSemantics) {
  const int64_t Iterations = 3000;
  Rng R(GetParam() ^ 0x5eed);

  for (int Case = 0; Case != 6; ++Case) {
    FigureOneProgram F = makeFigureOne(Iterations);
    ClassHierarchy CH(F.P);
    CostModel Model;
    OptimizingCompiler Compiler(F.P, CH, Model);
    InlineRuleSet Rules = randomRules(F, R);
    ProfileDirectedOracle Oracle(F.P, CH, Rules);

    VirtualMachine VM(F.P);
    // Compile a random subset of methods with the random rules.
    for (MethodId M :
         {F.RunTest, F.Get, F.Main, F.Put, F.MyKeyEquals}) {
      if (!R.nextBool(0.7))
        continue;
      VM.codeManager().install(
          Compiler.compile(M, OptLevel::Opt2, Oracle));
    }
    unsigned T = VM.addThread(F.P.entryMethod());
    VM.run();
    EXPECT_EQ(VM.threads()[T]->Result.asInt(), 3 * Iterations)
        << "seed " << GetParam() << " case " << Case;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
