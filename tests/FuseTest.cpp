//===- tests/FuseTest.cpp - Superinstruction fusion tests ------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The fusion subsystem's contracts (see DESIGN.md, "Superinstruction
// fusion"):
//   (1) runs are well-formed: straight-line, fusable opcodes only, no
//       branch target strictly inside, and the batch charge equals the
//       sum of the per-PC cost-table entries the run replaces;
//   (2) fused execution is bit-identical to per-bytecode dispatch at
//       every observable boundary — same clock, same instruction count,
//       same frames, locals and operand stacks — for every stepping
//       granularity and across the StopClock suspension path;
//   (3) fusion composes with inlining, OSR deoptimization and the
//       bounded code cache: a deopt landing inside a fused-run region
//       rematerializes exact source-level state, eviction frees the
//       handlers, and recompile-on-reentry re-derives them;
//   (4) whole-run and grid results are byte-identical with fusion on or
//       off, serial or parallel;
//   (5) fuse-install trace events cost zero simulated cycles and their
//       exported JSON bytes are pinned by a golden fixture.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "fuse/FusionBuilder.h"
#include "harness/CsvExport.h"
#include "harness/Experiment.h"
#include "osr/FrameMap.h"
#include "osr/OsrManager.h"
#include "support/Audit.h"
#include "trace/TraceJson.h"
#include "trace/TraceSink.h"
#include "vm/VirtualMachine.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

using namespace aoci;

namespace {

/// Forces invariant auditing on for one scope (Release builds default it
/// off) and restores the prior setting on exit.
struct AuditScope {
  bool Prev;
  AuditScope() : Prev(audit::enabled()) { audit::setEnabled(true); }
  ~AuditScope() { audit::setEnabled(Prev); }
};

/// A cost model with fusion enabled down to baseline code, so hand-built
/// programs fuse on their very first (lazy baseline) compile.
CostModel fusedEverywhere() {
  CostModel Model;
  Model.Fuse.Enabled = true;
  Model.Fuse.MinLevel = 0;
  return Model;
}

//===----------------------------------------------------------------------===//
// Hand-built programs
//===----------------------------------------------------------------------===//

/// Same three-level call chain as CodeCacheTest/OsrTest:
///   main()   { t = 0; repeat Calls: t += outer(Iters); return t; }
///   outer(n) { return mid(n) + 1; }
///   mid(n)   { return inner(n) + 1; }
///   inner(n) { s = 0; while (n != 0) { s += n; n--; } return s; }
struct DeepProgram {
  Program P;
  MethodId Main = InvalidMethodId;
  MethodId Outer = InvalidMethodId;
  MethodId Mid = InvalidMethodId;
  MethodId Inner = InvalidMethodId;
  BytecodeIndex OuterCallsMid = 0;
  BytecodeIndex MidCallsInner = 0;
};

DeepProgram deepProgram(int64_t Calls, int64_t Iters) {
  DeepProgram D;
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  D.Inner = B.declareMethod(C, "inner", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Inner);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.load(1).load(0).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  D.Mid = B.declareMethod(C, "mid", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Mid);
    E.load(0);
    D.MidCallsInner = E.nextIndex();
    E.invokeStatic(D.Inner);
    E.iconst(1).iadd().vreturn();
    E.finish();
  }
  D.Outer = B.declareMethod(C, "outer", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Outer);
    E.load(0);
    D.OuterCallsMid = E.nextIndex();
    E.invokeStatic(D.Mid);
    E.iconst(1).iadd().vreturn();
    E.finish();
  }
  D.Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(D.Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(Calls).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.iconst(Iters).invokeStatic(D.Outer);
    E.load(1).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(D.Main);
  D.P = B.build();
  return D;
}

int64_t deepProgramResult(int64_t Calls, int64_t Iters) {
  return Calls * (Iters * (Iters + 1) / 2 + 2);
}

std::unique_ptr<CodeVariant> planlessVariant(const Program &P, MethodId M,
                                             OptLevel Level) {
  auto V = std::make_unique<CodeVariant>();
  V->M = M;
  V->Level = Level;
  V->MachineUnits = P.method(M).machineSize();
  return V;
}

std::unique_ptr<CodeVariant> plannedOuter(const DeepProgram &D,
                                          OptLevel Level) {
  InlineCase InnerCase;
  InnerCase.Callee = D.Inner;
  InnerCase.BodyUnits = D.P.method(D.Inner).machineSize();
  InlineCase MidCase;
  MidCase.Callee = D.Mid;
  MidCase.BodyUnits = D.P.method(D.Mid).machineSize();
  MidCase.Body = std::make_unique<InlineNode>();
  MidCase.Body->getOrCreate(D.MidCallsInner)
      .Cases.push_back(std::move(InnerCase));
  InlinePlan Plan;
  Plan.Root.getOrCreate(D.OuterCallsMid).Cases.push_back(std::move(MidCase));
  Plan.recountStatistics();
  Plan.TotalUnits = D.P.method(D.Outer).machineSize() +
                    D.P.method(D.Mid).machineSize() +
                    D.P.method(D.Inner).machineSize();
  auto V = planlessVariant(D.P, D.Outer, Level);
  V->MachineUnits = Plan.TotalUnits;
  V->Plan = std::move(Plan);
  return V;
}

/// A torture loop for the lowering: every fusable opcode, the symbolic
/// shuffles (dup/swap/pop, store-aliasing, the store peephole), heap and
/// array effects, instanceof on real and null receivers, the wrapping /
/// division-edge arithmetic cases, and a static call so runs start at
/// non-zero stack depth.
struct TortureProgram {
  Program P;
  MethodId Main = InvalidMethodId;
  MethodId Helper = InvalidMethodId;

  explicit TortureProgram(int64_t Iters) {
    const int64_t IntMin = std::numeric_limits<int64_t>::min();
    ProgramBuilder B;
    ClassId K = B.addClass("K", InvalidClassId, 2);
    Helper = B.declareMethod(K, "helper", MethodKind::Static, 1, true);
    {
      CodeEmitter E = B.code(Helper);
      E.load(0).iconst(1023).iand().vreturn();
      E.finish();
    }
    Main = B.declareMethod(K, "main", MethodKind::Static, 0, true);
    {
      CodeEmitter E = B.code(Main);
      auto Top = E.newLabel();
      auto Exit = E.newLabel();
      // locals: 0 = i, 1 = s, 2 = obj, 3 = arr, 4 = tmp
      E.iconst(Iters).store(0).iconst(0).store(1);
      E.newObject(K).store(2);
      E.iconst(5).newArray().store(3);
      E.bind(Top);
      E.load(0).ifZero(Exit);
      // Arithmetic with lazy-shuffle pressure.
      E.load(1).iconst(3).imul().iconst(7).iadd().iconst(11).irem();
      E.dup().swap().iadd().store(1);
      E.load(0).load(1).swap().dup().pop().iadd().store(1);
      // StoreLocal under a live alias of the stored local.
      E.load(1).iconst(5).store(1).store(4);
      E.load(1).load(4).iadd().store(1);
      // Object fields.
      E.load(2).load(1).putField(0);
      E.load(2).getField(0).load(0).iadd().store(1);
      E.load(2).load(2).getField(0).iconst(1).iadd().putField(1);
      E.load(2).getField(1).load(1).iadd().store(1);
      // Arrays.
      E.load(3).load(0).iconst(5).irem().load(1).arrayStore();
      E.load(3).load(0).iconst(5).irem().arrayLoad().store(4);
      E.load(3).arrayLength().load(4).iadd().store(4);
      // instanceof and tag-aware equality on nulls.
      E.load(2).instanceOf(K);
      E.constNull().instanceOf(K);
      E.iadd().load(4).iadd().store(4);
      E.constNull().constNull().icmpEq().load(4).iadd().store(4);
      // Division / remainder / shift edge cases.
      E.iconst(IntMin).iconst(-1).idiv();
      E.iconst(IntMin).iconst(-1).irem().iadd();
      E.iconst(123).iconst(0).idiv().iadd();
      E.iconst(123).iconst(0).irem().iadd();
      E.ineg().iconst(63).ishl().iconst(2).ishr();
      E.load(1).icmpLt().load(1).iadd().store(1);
      E.load(4).load(1).iadd().store(1);
      // A call, so the following run starts at stack depth 1.
      E.load(1).invokeStatic(Helper);
      E.iconst(1).iadd().store(1);
      E.load(0).iconst(1).isub().store(0);
      E.jump(Top);
      E.bind(Exit);
      E.load(1).vreturn();
      E.finish();
    }
    B.setEntry(Main);
    P = B.build();
  }
};

template <typename Pred>
void stepUntil(VirtualMachine &VM, ThreadState &T, Pred Done) {
  for (uint64_t I = 0; I != 10000000; ++I) {
    if (Done())
      return;
    ASSERT_FALSE(T.Finished) << "thread finished before the condition held";
    VM.step(T, 1);
  }
  FAIL() << "condition never held";
}

/// Locals and operand stack of \p S match frame \p Index bit for bit.
void expectSameValues(const FrameSnapshot &S, const ThreadState &T,
                      size_t Index) {
  FrameSnapshot Now = snapshotFrame(T, Index);
  EXPECT_EQ(S.Method, Now.Method);
  ASSERT_EQ(S.Locals.size(), Now.Locals.size());
  for (size_t I = 0; I != S.Locals.size(); ++I)
    EXPECT_TRUE(S.Locals[I].equals(Now.Locals[I])) << "local " << I;
  ASSERT_EQ(S.Stack.size(), Now.Stack.size());
  for (size_t I = 0; I != S.Stack.size(); ++I)
    EXPECT_TRUE(S.Stack[I].equals(Now.Stack[I])) << "stack slot " << I;
}

/// Every simulated-state observable of the two VMs agrees: clock,
/// instruction count, frame shapes, and every live slab value.
void expectLockstepState(const VirtualMachine &A, const ThreadState &TA,
                         const VirtualMachine &B, const ThreadState &TB) {
  ASSERT_EQ(A.cycles(), B.cycles());
  ASSERT_EQ(A.counters().InstructionsExecuted,
            B.counters().InstructionsExecuted);
  ASSERT_EQ(TA.Finished, TB.Finished);
  ASSERT_EQ(TA.SlabTop, TB.SlabTop);
  ASSERT_EQ(TA.Frames.size(), TB.Frames.size());
  for (size_t F = 0; F != TA.Frames.size(); ++F) {
    ASSERT_EQ(TA.Frames[F].Method, TB.Frames[F].Method) << "frame " << F;
    ASSERT_EQ(TA.Frames[F].PC, TB.Frames[F].PC) << "frame " << F;
    ASSERT_EQ(TA.Frames[F].LocalsBase, TB.Frames[F].LocalsBase);
    ASSERT_EQ(TA.Frames[F].StackBase, TB.Frames[F].StackBase);
  }
  for (uint32_t I = 0; I != TA.SlabTop; ++I)
    ASSERT_TRUE(TA.Slab[I].equals(TB.Slab[I])) << "slab slot " << I;
}

void expectIdenticalResults(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.OptBytesGenerated, B.OptBytesGenerated);
  EXPECT_EQ(A.OptBytesResident, B.OptBytesResident);
  EXPECT_EQ(A.OptCompileCycles, B.OptCompileCycles);
  EXPECT_EQ(A.BaselineCompileCycles, B.BaselineCompileCycles);
  for (unsigned C = 0; C != NumAosComponents; ++C)
    EXPECT_EQ(A.ComponentCycles[C], B.ComponentCycles[C]) << "component " << C;
  EXPECT_EQ(A.GcCycles, B.GcCycles);
  EXPECT_EQ(A.OptCompilations, B.OptCompilations);
  EXPECT_EQ(A.GuardTests, B.GuardTests);
  EXPECT_EQ(A.GuardFallbacks, B.GuardFallbacks);
  EXPECT_EQ(A.InlinedCalls, B.InlinedCalls);
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken);
  EXPECT_EQ(A.ProgramResult, B.ProgramResult);
  EXPECT_EQ(A.OsrEntries, B.OsrEntries);
  EXPECT_EQ(A.Deopts, B.Deopts);
  EXPECT_EQ(A.OsrTransitionCycles, B.OsrTransitionCycles);
  EXPECT_EQ(A.LiveCodeBytes, B.LiveCodeBytes);
  EXPECT_EQ(A.PeakCodeBytes, B.PeakCodeBytes);
  EXPECT_EQ(A.Evictions, B.Evictions);
  EXPECT_EQ(A.RecompilesAfterEvict, B.RecompilesAfterEvict);
}

//===----------------------------------------------------------------------===//
// (1) Run well-formedness and charge accounting, over a whole workload.
//===----------------------------------------------------------------------===//

TEST(FuseBuilderTest, RunsAreWellFormedOnWorkloadBodies) {
  WorkloadParams Params;
  Params.Scale = 0.05;
  Workload W = makeWorkload("compress", Params);
  CostModel Model;

  unsigned MethodsWithRuns = 0;
  for (MethodId M = 0; M != W.Prog.numMethods(); ++M) {
    const Method &Meth = W.Prog.method(M);
    if (Meth.Body.empty())
      continue;
    // Recompute branch targets independently of the builder.
    std::vector<bool> IsTarget(Meth.Body.size(), false);
    for (const Instruction &I : Meth.Body)
      if (isBranch(I.Op))
        IsTarget[static_cast<size_t>(I.Operand)] = true;

    for (OptLevel Level : {OptLevel::Baseline, OptLevel::Opt2}) {
      auto Fused = buildFusedProgram(W.Prog, Meth, Level, Model);
      if (!Fused)
        continue;
      ++MethodsWithRuns;
      ASSERT_EQ(Fused->RunAtPC.size(), Meth.Body.size());
      uint32_t Covered = 0;
      for (const FusedRun &R : Fused->Runs) {
        EXPECT_GE(R.Length, MinFusedRunLength);
        ASSERT_LE(R.StartPC + R.Length, Meth.Body.size());
        uint64_t Charge = 0;
        for (uint32_t PC = R.StartPC; PC != R.StartPC + R.Length; ++PC) {
          const Instruction &I = Meth.Body[PC];
          EXPECT_TRUE(isFusable(I.Op)) << "PC " << PC;
          if (PC != R.StartPC) {
            EXPECT_FALSE(IsTarget[PC])
                << "branch target strictly inside a run at PC " << PC;
          }
          Charge += I.machineSize() * Model.cyclesPerUnit(Level);
          // Only the start PC dispatches the run.
          EXPECT_EQ(Fused->RunAtPC[PC], PC == R.StartPC ? &R : nullptr);
        }
        EXPECT_EQ(R.BatchCharge, Charge)
            << "batch charge must equal the per-PC cost-table sum";
        const Instruction &Last = Meth.Body[R.StartPC + R.Length - 1];
        EXPECT_EQ(R.ChargeBeforeLast,
                  Charge - Last.machineSize() * Model.cyclesPerUnit(Level));
        EXPECT_GE(R.DepthBefore + 4u, R.DepthBefore); // no wrap nonsense
        // Profitability gate: an installed run's symbolic program must
        // be strictly smaller than the bytecode it covers — unelided
        // runs are a measured host-side loss and must not be kept.
        EXPECT_LT(R.NumOps, R.Length);
        Covered += R.Length;
      }
      EXPECT_EQ(Fused->OpsFused, Covered);
      EXPECT_GT(Fused->FusedBytes, 0u);
    }
  }
  EXPECT_GT(MethodsWithRuns, 0u)
      << "a real workload must contain fusable straight-line runs";
}

TEST(FuseBuilderTest, LoweringElidesPureShuffles) {
  // s = ((a + b) * 2) computed through dup/swap/pop noise: the symbolic
  // lowering must compile the shuffles away, leaving fewer fused ops than
  // source instructions.
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    E.iconst(21).store(0).iconst(13).store(1);
    E.load(0).load(1).swap().iadd();
    E.dup().iadd();
    E.dup().pop().store(2);
    E.load(2).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();

  CostModel Model;
  auto Fused =
      buildFusedProgram(P, P.method(Main), OptLevel::Baseline, Model);
  ASSERT_NE(Fused, nullptr);
  ASSERT_FALSE(Fused->Runs.empty());
  EXPECT_LT(Fused->Ops.size(), static_cast<size_t>(Fused->OpsFused))
      << "shuffles must lower to fewer ops than source instructions";

  // And the program still computes the right answer under fusion.
  VirtualMachine VM(P, fusedEverywhere());
  VM.addThread(P.entryMethod());
  VM.run();
  EXPECT_EQ(VM.threads()[0]->Result.asInt(), (21 + 13) * 2);
}

//===----------------------------------------------------------------------===//
// (2) Lockstep bit-identity at every stepping granularity.
//===----------------------------------------------------------------------===//

TEST(FuseLockstepTest, TortureLoopBitIdenticalAtEveryGranularity) {
  AuditScope Audited;
  const int64_t Iters = 40;
  TortureProgram TP(Iters);

  for (uint64_t K : {1u, 2u, 3u, 5u, 8u, 13u, 400u}) {
    VirtualMachine Plain(TP.P, CostModel{});
    VirtualMachine Fused(TP.P, fusedEverywhere());
    Plain.addThread(TP.P.entryMethod());
    Fused.addThread(TP.P.entryMethod());
    ThreadState &TPl = *Plain.threads()[0];
    ThreadState &TFu = *Fused.threads()[0];
    for (uint64_t Steps = 0; !TPl.Finished || !TFu.Finished; ++Steps) {
      ASSERT_LT(Steps, 10000000u) << "lockstep loop ran away (k=" << K << ")";
      Plain.step(TPl, K);
      Fused.step(TFu, K);
      expectLockstepState(Plain, TPl, Fused, TFu);
    }
    EXPECT_TRUE(TPl.Result.equals(TFu.Result)) << "k=" << K;
    EXPECT_EQ(TPl.SlabTop, 0u);
    EXPECT_EQ(Plain.counters().FusedRunsExecuted, 0u);
    if (K == 1) {
      // A one-instruction budget can never fit a run: pure fallback.
      EXPECT_EQ(Fused.counters().FusedRunsExecuted, 0u);
    } else if (K >= 8) {
      EXPECT_GT(Fused.counters().FusedRunsExecuted, 0u)
          << "the batched fast path never executed at k=" << K;
    }
  }
}

TEST(FuseLockstepTest, CycleLimitSuspensionBitIdentical) {
  // Exercises the StopClock fallback: resuming under a cycle limit that
  // lands inside a fused run must suspend at exact per-PC granularity.
  AuditScope Audited;
  TortureProgram TP(25);

  VirtualMachine Plain(TP.P, CostModel{});
  VirtualMachine Fused(TP.P, fusedEverywhere());
  Plain.addThread(TP.P.entryMethod());
  Fused.addThread(TP.P.entryMethod());
  ThreadState &TPl = *Plain.threads()[0];
  ThreadState &TFu = *Fused.threads()[0];
  uint64_t Limit = 1;
  for (uint64_t Rounds = 0; !TPl.Finished || !TFu.Finished; ++Rounds) {
    ASSERT_LT(Rounds, 1000000u) << "cycle-limit loop ran away";
    Plain.run(Limit);
    Fused.run(Limit);
    expectLockstepState(Plain, TPl, Fused, TFu);
    Limit += 97; // deliberately misaligned with any batch charge
  }
  EXPECT_TRUE(TPl.Result.equals(TFu.Result));
}

TEST(FuseLockstepTest, OptimizedAndInlinedVariantsStayLocked) {
  // Fusion must track recompilation: both VMs install the same optimized
  // variants mid-run (a planless Opt2 inner, then a fully inlined Opt1
  // outer) and must stay bit-identical through the transitions.
  AuditScope Audited;
  const int64_t Calls = 6, Iters = 30;
  DeepProgram DA = deepProgram(Calls, Iters);
  DeepProgram DB = deepProgram(Calls, Iters);

  VirtualMachine Plain(DA.P, CostModel{});
  VirtualMachine Fused(DB.P, fusedEverywhere());
  Plain.addThread(DA.P.entryMethod());
  Fused.addThread(DB.P.entryMethod());
  ThreadState &TPl = *Plain.threads()[0];
  ThreadState &TFu = *Fused.threads()[0];

  bool Installed = false;
  for (uint64_t Steps = 0; !TPl.Finished || !TFu.Finished; ++Steps) {
    ASSERT_LT(Steps, 10000000u) << "lockstep loop ran away";
    Plain.step(TPl, 7);
    Fused.step(TFu, 7);
    expectLockstepState(Plain, TPl, Fused, TFu);
    if (!Installed && Plain.codeManager().baseline(DA.Inner) != nullptr &&
        Fused.codeManager().baseline(DB.Inner) != nullptr) {
      Installed = true;
      auto InstallBoth = [&](std::unique_ptr<CodeVariant> VA,
                             std::unique_ptr<CodeVariant> VB) {
        VA->CompiledAtCycle = Plain.cycles();
        VB->CompiledAtCycle = Fused.cycles();
        Plain.codeManager().install(std::move(VA));
        Fused.codeManager().install(std::move(VB));
      };
      InstallBoth(planlessVariant(DA.P, DA.Inner, OptLevel::Opt2),
                  planlessVariant(DB.P, DB.Inner, OptLevel::Opt2));
      InstallBoth(plannedOuter(DA, OptLevel::Opt1),
                  plannedOuter(DB, OptLevel::Opt1));
    }
  }
  ASSERT_TRUE(Installed);
  EXPECT_EQ(TPl.Result.asInt(), deepProgramResult(Calls, Iters));
  EXPECT_TRUE(TPl.Result.equals(TFu.Result));

  // The fused VM actually attached handlers to the installs above.
  EXPECT_GT(Fused.codeManager().fusedRunsInstalled(), 0u);
  EXPECT_GT(Fused.codeManager().fusedBytesTotal(), 0u);
  EXPECT_GT(Fused.counters().FusedRunsExecuted, 0u);
  EXPECT_EQ(Plain.codeManager().fusedRunsInstalled(), 0u);
}

//===----------------------------------------------------------------------===//
// (3) Deopt inside a fused-run region; eviction frees and re-derives.
//===----------------------------------------------------------------------===//

TEST(FuseDeoptTest, EvictionDeoptInsideFusedRunRematerializesExactly) {
  AuditScope Audited;
  const int64_t Calls = 3, Iters = 300;
  DeepProgram D = deepProgram(Calls, Iters);

  CostModel Model = fusedEverywhere();
  const uint64_t BaselineSum =
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Main).machineSize()) +
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Outer).machineSize()) +
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Mid).machineSize()) +
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Inner).machineSize());
  const uint64_t PlannedBytes = 4000, BigBytes = 4000;
  Model.CodeCache.CapacityBytes = BaselineSum + PlannedBytes + 100;

  VirtualMachine VM(D.P, Model);
  OsrManager Mgr;
  VM.setOsrDriver(&Mgr);
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T,
            [&] { return VM.codeManager().baseline(D.Inner) != nullptr; });

  auto Planned = plannedOuter(D, OptLevel::Opt1);
  Planned->CodeBytes = PlannedBytes;
  Planned->CompiledAtCycle = VM.cycles();
  const CodeVariant *PlannedPtr = VM.codeManager().install(std::move(Planned));
  ASSERT_NE(PlannedPtr->Fused, nullptr)
      << "the planned outer body must have fusable runs";

  // Park the thread with the inline group live and the innermost frame's
  // PC *strictly inside* a fused run of inner's baseline — the region a
  // deopt must rematerialize at source granularity.
  const CodeVariant *InnerBase = VM.codeManager().baseline(D.Inner);
  ASSERT_NE(InnerBase->Fused, nullptr);
  auto InsideFusedRun = [&] {
    if (T.Frames.size() != 4 || T.Frames[1].Variant != PlannedPtr)
      return false;
    const uint32_t PC = T.Frames[3].PC;
    const auto &Map = InnerBase->Fused->RunAtPC;
    if (PC >= Map.size() || Map[PC] != nullptr)
      return false; // not an interior PC
    for (const FusedRun &R : InnerBase->Fused->Runs)
      if (PC > R.StartPC && PC < R.StartPC + R.Length)
        return true;
    return false;
  };
  stepUntil(VM, T, InsideFusedRun);

  std::vector<FrameSnapshot> Snaps;
  for (size_t F = 0; F != T.Frames.size(); ++F)
    Snaps.push_back(snapshotFrame(T, F));

  auto Big = planlessVariant(D.P, D.Main, OptLevel::Opt2);
  Big->CodeBytes = BigBytes;
  Big->CompiledAtCycle = VM.cycles();
  VM.codeManager().install(std::move(Big));

  EXPECT_TRUE(PlannedPtr->Evicted);
  EXPECT_EQ(PlannedPtr->Fused, nullptr)
      << "eviction must free the victim's fused handlers";
  EXPECT_GE(Mgr.stats().Deopts, 1u);

  // The deopt was the identity on source-level state even though the
  // resume PC sits mid-run, and every physical frame's fused-handler map
  // matches its (possibly rematerialized) baseline variant.
  ASSERT_EQ(T.Frames.size(), 4u);
  for (size_t F = 0; F != 4; ++F)
    expectSameValues(Snaps[F], T, F);
  for (size_t F = 0; F != 4; ++F) {
    const Frame &Fr = T.Frames[F];
    EXPECT_FALSE(Fr.Inlined) << "frame " << F;
    ASSERT_NE(Fr.Variant, nullptr);
    EXPECT_EQ(Fr.Fuse, Fr.Variant->Fused.get()) << "frame " << F;
  }

  VM.run();
  EXPECT_EQ(T.Result.asInt(), deepProgramResult(Calls, Iters));
  EXPECT_EQ(T.SlabTop, 0u);
}

TEST(FuseEvictionTest, HandlersFreedOnEvictAndRederivedOnReentry) {
  AuditScope Audited;
  const int64_t Calls = 6, Iters = 40;
  DeepProgram D = deepProgram(Calls, Iters);

  CostModel Model = fusedEverywhere();
  const uint64_t MainBytes =
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Main).machineSize());
  const uint64_t MidBytes =
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Mid).machineSize());
  const uint64_t InnerBytes =
      Model.codeBytes(OptLevel::Baseline, D.P.method(D.Inner).machineSize());
  const uint64_t BigBytes = 5000;
  Model.CodeCache.CapacityBytes =
      MainBytes + MidBytes + InnerBytes + BigBytes;

  VirtualMachine VM(D.P, Model);
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T,
            [&] { return VM.codeManager().baseline(D.Inner) != nullptr; });
  stepUntil(VM, T, [&] { return T.Frames.size() == 1; });
  const CodeVariant *OldOuter = VM.codeManager().baseline(D.Outer);
  ASSERT_NE(OldOuter, nullptr);
  ASSERT_NE(OldOuter->Fused, nullptr) << "baseline outer must have fused";
  const uint64_t RunsBefore = VM.codeManager().fusedRunsInstalled();

  auto Big = planlessVariant(D.P, D.Main, OptLevel::Opt2);
  Big->CodeBytes = BigBytes;
  Big->CompiledAtCycle = VM.cycles();
  VM.codeManager().install(std::move(Big));

  ASSERT_TRUE(OldOuter->Evicted);
  EXPECT_EQ(OldOuter->Fused, nullptr)
      << "tombstoned variants must not retain fused handlers";

  VM.run();
  EXPECT_EQ(T.Result.asInt(), deepProgramResult(Calls, Iters));
  const CodeVariant *NewOuter = VM.codeManager().baseline(D.Outer);
  ASSERT_NE(NewOuter, nullptr);
  ASSERT_NE(NewOuter, OldOuter);
  EXPECT_NE(NewOuter->Fused, nullptr)
      << "recompile-on-reentry must re-derive the handlers";
  EXPECT_GT(VM.codeManager().fusedRunsInstalled(), RunsBefore);
}

//===----------------------------------------------------------------------===//
// (4) Whole-run and grid byte-identity, fusion on vs off, serial vs jobs.
//===----------------------------------------------------------------------===//

TEST(FuseExperimentTest, RunResultsIdenticalWithFusionOnOsrAndCacheOn) {
  RunConfig Off;
  Off.WorkloadName = "mpegaudio";
  Off.Policy = PolicyKind::Fixed;
  Off.MaxDepth = 3;
  Off.Params.Scale = 0.3;
  Off.Aos.Osr.Enabled = true;
  Off.Model.CodeCache.CapacityBytes = 6000;
  ASSERT_FALSE(Off.Model.Fuse.Enabled) << "fusion defaults off";

  RunConfig On = Off;
  On.Model.Fuse.Enabled = true; // default MinLevel: optimized code only

  RunConfig Everywhere = Off;
  Everywhere.Model.Fuse = fusedEverywhere().Fuse;

  RunResult A = runExperiment(Off);
  RunResult B = runExperiment(On);
  RunResult C = runExperiment(Everywhere);
  expectIdenticalResults(A, B);
  expectIdenticalResults(A, C);
}

TEST(FuseGridTest, FusionAndJobCountNeverChangeTheGridCsv) {
  GridConfig Off;
  Off.Workloads = {"compress", "mpegaudio"};
  Off.Policies = {PolicyKind::Fixed, PolicyKind::Parameterless};
  Off.Depths = {2, 3};
  Off.Params.Scale = 0.3;
  Off.Aos.Osr.Enabled = true;
  Off.Model.CodeCache.CapacityBytes = 6000;

  GridConfig On = Off;
  On.Model.Fuse = fusedEverywhere().Fuse;

  const GridResults OffResults = runGrid(Off);
  const GridResults OnResults = runGrid(On);
  const GridResults OnParallel = runGridParallel(On, 4);

  const std::string OffCsv = exportCsv(OffResults, Off.Policies, Off.Depths);
  const std::string OnCsv = exportCsv(OnResults, On.Policies, On.Depths);
  EXPECT_EQ(OffCsv, OnCsv)
      << "fusion must never move a simulated cycle in the frozen CSV";

  const std::string OnParallelCsv =
      exportCsv(OnParallel, On.Policies, On.Depths);
  EXPECT_EQ(OnCsv, OnParallelCsv)
      << "fused sweeps must stay deterministic across job counts";

  // The metrics CSV as a whole legitimately differs across job counts
  // (worker ids, host timings), but the fusion ledger is a pure function
  // of installed code: serial and --jobs 4 must agree row for row, and a
  // fused sweep over optimizing policies must actually install handlers.
  const std::vector<RunMetrics> &Serial = OnResults.metrics();
  const std::vector<RunMetrics> &Parallel = OnParallel.metrics();
  ASSERT_EQ(Serial.size(), Parallel.size());
  uint64_t InstalledTotal = 0;
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].WorkloadName, Parallel[I].WorkloadName);
    EXPECT_EQ(Serial[I].FusedRuns, Parallel[I].FusedRuns)
        << "row " << I << " (" << Serial[I].WorkloadName << ")";
    EXPECT_EQ(Serial[I].FusedOps, Parallel[I].FusedOps) << "row " << I;
    EXPECT_EQ(Serial[I].FusedBytes, Parallel[I].FusedBytes) << "row " << I;
    InstalledTotal += Serial[I].FusedRuns;
  }
  EXPECT_GT(InstalledTotal, 0u)
      << "fused sweep never installed a handler; the metrics plumbing "
         "is dead";
  for (const RunMetrics &M : OffResults.metrics()) {
    EXPECT_EQ(M.FusedRuns, 0u);
    EXPECT_EQ(M.FusedOps, 0u);
    EXPECT_EQ(M.FusedBytes, 0u);
  }
}

//===----------------------------------------------------------------------===//
// (5) Golden trace: the fuse-install event stream's bytes are pinned.
//===----------------------------------------------------------------------===//

void expectMatchesGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = std::string(AOCI_GOLDEN_DIR) + "/" + Name;
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream OutFile(Path, std::ios::binary);
    ASSERT_TRUE(OutFile) << "cannot write " << Path;
    OutFile << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "fuse-install trace export drifted from " << Path
      << "; either the fusion sequence or the JSON serialization "
         "changed. If intentional, rerun with AOCI_UPDATE_GOLDEN=1, "
         "review the fixture diff, and update OBSERVABILITY.md if the "
         "schema moved";
}

TEST(FuseGoldenTest, FuseInstallTraceJsonMatchesGolden) {
  uint32_t Mask = 0;
  std::string Error;
  ASSERT_TRUE(parseTraceFilter("fuse-install", Mask, Error)) << Error;
  TraceSink Sink;
  Sink.enable(Mask);

  const int64_t Calls = 4, Iters = 50;
  DeepProgram D = deepProgram(Calls, Iters);
  VirtualMachine VM(D.P, fusedEverywhere());
  VM.setTraceSink(&Sink);
  VM.addThread(D.P.entryMethod());
  VM.run();
  ASSERT_EQ(VM.threads()[0]->Result.asInt(), deepProgramResult(Calls, Iters));

  // Emission is uncharged: an identical run without the sink lands on the
  // same cycle.
  VirtualMachine Silent(D.P, fusedEverywhere());
  Silent.addThread(D.P.entryMethod());
  Silent.run();
  EXPECT_EQ(VM.cycles(), Silent.cycles());

  std::ostringstream Json;
  writeChromeTrace(Json, Sink, "fuse/install");
  expectMatchesGolden("trace_fuse_install.golden", Json.str());
}

} // namespace
