//===- tests/BudgetTest.cpp - Budget organizer and calibration tests -------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Covers the budget-driven inlining organizer (core/BudgetOrganizer.h)
// and the size-estimator calibration it prices never-compiled callees
// with, plus the two harness-level contracts the organizer ships under:
// a budget-organizer sweep is byte-identical between runGrid() and
// runGridParallel(), and the default (threshold) configuration still
// reproduces the checked-in cycle fingerprints byte for byte.
//
//===----------------------------------------------------------------------===//

#include "core/AdaptiveSystem.h"
#include "core/BudgetOrganizer.h"
#include "bytecode/ProgramBuilder.h"
#include "bytecode/SizeClass.h"
#include "harness/CsvExport.h"
#include "harness/Experiment.h"
#include "opt/SizeEstimator.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace aoci;

namespace {

Trace makeTrace(std::vector<ContextPair> Ctx, MethodId Callee) {
  Trace T;
  T.Context = std::move(Ctx);
  T.Callee = Callee;
  return T;
}

/// Identity of a rule for set comparisons: (callee, context).
using RuleKey = std::pair<MethodId, std::vector<ContextPair>>;

std::set<RuleKey> ruleKeys(const InlineRuleSet &Rules) {
  std::set<RuleKey> Keys;
  Rules.forEach([&](const InliningRule &R) {
    Keys.insert({R.T.Callee, R.T.Context});
  });
  return Keys;
}

} // namespace

//===----------------------------------------------------------------------===//
// SizeCalibration
//===----------------------------------------------------------------------===//

TEST(SizeCalibrationTest, StartsNeutral) {
  SizeCalibration C;
  EXPECT_EQ(C.samples(), 0u);
  EXPECT_DOUBLE_EQ(C.factor(), 1.0);
  EXPECT_DOUBLE_EQ(C.meanAbsErrorPct(), 0.0);
  EXPECT_EQ(C.calibrated(10), 10u);
}

TEST(SizeCalibrationTest, FirstSampleSnapsToObservedRatio) {
  SizeCalibration C;
  // Estimator said 100, compiler measured 200: estimates run 2x small.
  C.observe(100, 200);
  EXPECT_EQ(C.samples(), 1u);
  EXPECT_DOUBLE_EQ(C.factor(), 2.0);
  EXPECT_EQ(C.calibrated(10), 20u);
  EXPECT_DOUBLE_EQ(C.meanAbsErrorPct(), 50.0);
}

TEST(SizeCalibrationTest, EmaSmoothsLaterSamples) {
  SizeCalibration C;
  C.observe(100, 200); // ratio 2.0, snapped
  C.observe(100, 100); // ratio 1.0
  // Ema = 0.75 * 2.0 + 0.25 * 1.0.
  EXPECT_DOUBLE_EQ(C.factor(), 1.75);
  // Error: 50% then 0%, mean 25%.
  EXPECT_DOUBLE_EQ(C.meanAbsErrorPct(), 25.0);
}

TEST(SizeCalibrationTest, FactorIsClamped) {
  SizeCalibration Under;
  Under.observe(1, 1000); // ratio 1000: one pathological compile
  EXPECT_DOUBLE_EQ(Under.factor(), 4.0) << "clamped above";
  SizeCalibration Over;
  Over.observe(1000, 1); // ratio 0.001
  EXPECT_DOUBLE_EQ(Over.factor(), 0.5) << "clamped below";
}

TEST(SizeCalibrationTest, ZeroInputsAreIgnored) {
  SizeCalibration C;
  C.observe(0, 50);
  C.observe(50, 0);
  EXPECT_EQ(C.samples(), 0u);
  EXPECT_DOUBLE_EQ(C.factor(), 1.0);
}

TEST(SizeCalibrationTest, CalibratedNeverReturnsZero) {
  SizeCalibration C;
  C.observe(1000, 1); // factor clamps to 0.5
  EXPECT_EQ(C.calibrated(1), 1u);
  EXPECT_EQ(C.calibrated(0), 1u);
}

//===----------------------------------------------------------------------===//
// BudgetInliningOrganizer
//===----------------------------------------------------------------------===//

namespace {

/// A DCG over the Figure 1 program with several candidates of mixed
/// weight, shared by the organizer tests.
struct BudgetFixture {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  AosDatabase Db;
  SizeCalibration Calib;

  BudgetFixture() {
    Dcg.addSample(makeTrace({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode), 20);
    Dcg.addSample(makeTrace({{F.Get, F.EqualsSite}}, F.MyKeyEquals), 12);
    Dcg.addSample(makeTrace({{F.RunTest, F.GetSite1}}, F.Get), 50);
    Dcg.addSample(makeTrace({{F.RunTest, F.GetSite2}}, F.Get), 8);
    Dcg.addSample(
        makeTrace({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}},
                  F.MyKeyHashCode),
        6);
  }
};

} // namespace

TEST(BudgetOrganizerTest, EmptyDcgClearsRules) {
  BudgetFixture Fx;
  BudgetInliningOrganizer Org;
  InlineRuleSet Rules;
  Rules.add({makeTrace({{1, 0}}, 2), 5.0, 0});
  DynamicCallGraph Empty;
  BudgetRebuildStats S =
      Org.rebuildRules(Fx.F.P, Empty, Fx.Db, Fx.Calib, 0, Rules);
  EXPECT_TRUE(Rules.empty());
  EXPECT_EQ(S.Scanned, 0u);
}

TEST(BudgetOrganizerTest, RebuildIsDeterministic) {
  BudgetFixture Fx;
  BudgetInliningOrganizer Org;
  InlineRuleSet A, B;
  BudgetRebuildStats SA =
      Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 7, A);
  BudgetRebuildStats SB =
      Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 7, B);
  EXPECT_EQ(SA.UnitsSpent, SB.UnitsSpent);
  EXPECT_EQ(SA.CandidatesAccepted, SB.CandidatesAccepted);
  EXPECT_EQ(SA.CandidatesPruned, SB.CandidatesPruned);
  EXPECT_EQ(ruleKeys(A), ruleKeys(B));
  EXPECT_GT(A.size(), 0u) << "default budgets accept the hot edges";
}

TEST(BudgetOrganizerTest, NoiseFloorFiltersLightTraces) {
  BudgetFixture Fx;
  BudgetOrganizerConfig Config;
  Config.MinCandidateWeight = 100.0; // above every sample weight
  BudgetInliningOrganizer Org(Config);
  InlineRuleSet Rules;
  BudgetRebuildStats S =
      Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, Rules);
  EXPECT_TRUE(Rules.empty());
  EXPECT_EQ(S.CandidatesAccepted, 0u);
  EXPECT_EQ(S.CandidatesPruned, 0u)
      << "sub-floor traces are never priced, only scanned";
  EXPECT_GT(S.Scanned, 0u);
}

TEST(BudgetOrganizerTest, ZeroBudgetsPruneEverything) {
  BudgetFixture Fx;
  BudgetOrganizerConfig Config;
  Config.InflationFactor = 0.0;
  Config.SlackUnits = 0;
  Config.ExplorationUnits = 0;
  BudgetInliningOrganizer Org(Config);
  InlineRuleSet Rules;
  BudgetRebuildStats S =
      Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, Rules);
  EXPECT_TRUE(Rules.empty());
  EXPECT_EQ(S.CandidatesAccepted, 0u);
  EXPECT_GT(S.CandidatesPruned, 0u);
  EXPECT_EQ(S.UnitsSpent, 0u);
}

TEST(BudgetOrganizerTest, MeasuredSizesBypassTheExplorationPool) {
  BudgetFixture Fx;
  BudgetOrganizerConfig Config;
  Config.ExplorationUnits = 0; // no speculation on estimates
  BudgetInliningOrganizer Org(Config);

  InlineRuleSet Rules;
  Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, Rules);
  EXPECT_TRUE(Rules.empty())
      << "nothing ever compiled: every candidate is estimate-priced and "
         "the exploration pool is empty";

  // Once installs feed back measured sizes, the same candidates price
  // from the ledger and no longer need exploration budget.
  for (MethodId M : {Fx.F.MyKeyHashCode, Fx.F.MyKeyEquals, Fx.F.Get})
    Fx.Db.recordMeasuredSize(M, OptLevel::Opt1, /*MachineUnits=*/12,
                             /*CodeBytes=*/48, /*CompileCycles=*/600);
  InlineRuleSet After;
  BudgetRebuildStats S =
      Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, After);
  EXPECT_GT(After.size(), 0u);
  EXPECT_EQ(S.CandidatesPruned, 0u)
      << "measured candidates fit the default inflation budget";
}

TEST(BudgetOrganizerTest, DecisionCallbackCoversEveryPricedCandidate) {
  BudgetFixture Fx;
  BudgetInliningOrganizer Org;
  InlineRuleSet Rules;
  unsigned Calls = 0, AcceptedSeen = 0;
  BudgetRebuildStats S = Org.rebuildRules(
      Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, Rules,
      [&](MethodId Caller, MethodId Callee, uint64_t Units,
          uint64_t Remaining, bool Accepted, bool Measured, double Weight) {
        ++Calls;
        AcceptedSeen += Accepted ? 1 : 0;
        EXPECT_GT(Units, 0u);
        EXPECT_GT(Weight, 0.0);
        EXPECT_FALSE(Measured) << "nothing compiled in this fixture";
        (void)Caller;
        (void)Callee;
        (void)Remaining;
      });
  EXPECT_EQ(Calls, S.CandidatesAccepted + S.CandidatesPruned);
  EXPECT_EQ(AcceptedSeen, S.CandidatesAccepted);
}

TEST(BudgetOrganizerTest, CreatedAtCyclePreservedAcrossRebuilds) {
  BudgetFixture Fx;
  BudgetInliningOrganizer Org;
  InlineRuleSet Rules;
  Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, /*NowCycle=*/10, Rules);
  ASSERT_GT(Rules.size(), 0u);
  Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, /*NowCycle=*/99, Rules);
  Rules.forEach([&](const InliningRule &R) {
    EXPECT_EQ(R.CreatedAtCycle, 10u)
        << "persisting rules keep their original creation time";
  });
}

TEST(BudgetOrganizerTest, LargeCalleesAreNeverCodified) {
  ProgramBuilder B;
  ClassId C = B.addClass("C");
  MethodId Big = B.declareMethod(C, "big", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Big);
    E.work(25 * CallSequenceSize + 100).iconst(0).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, false);
  {
    CodeEmitter E = B.code(Main);
    E.invokeStatic(Big).pop().ret();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();

  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{Main, 0}}, Big), 100);
  AosDatabase Db;
  SizeCalibration Calib;
  BudgetOrganizerConfig Generous;
  Generous.SlackUnits = 1u << 20;
  Generous.ExplorationUnits = 1u << 20;
  BudgetInliningOrganizer Org(Generous);
  InlineRuleSet Rules;
  Org.rebuildRules(P, Dcg, Db, Calib, 0, Rules);
  EXPECT_TRUE(Rules.empty())
      << "no budget buys an inline the compiler would refuse";
}

TEST(BudgetOrganizerTest, AcceptanceIsMonotoneUnderBudgetGrowth) {
  BudgetFixture Fx;
  // One measured callee so both pricing paths participate in the sweep.
  Fx.Db.recordMeasuredSize(Fx.F.Get, OptLevel::Opt1, /*MachineUnits=*/18,
                           /*CodeBytes=*/72, /*CompileCycles=*/900);
  std::set<RuleKey> Previous;
  uint64_t PreviousSpent = 0;
  for (uint64_t Slack : {0ull, 20ull, 60ull, 150ull, 400ull, 2000ull}) {
    BudgetOrganizerConfig Config;
    Config.SlackUnits = Slack;
    Config.ExplorationUnits = 100 + Slack;
    BudgetInliningOrganizer Org(Config);
    InlineRuleSet Rules;
    BudgetRebuildStats S =
        Org.rebuildRules(Fx.F.P, Fx.Dcg, Fx.Db, Fx.Calib, 0, Rules);
    std::set<RuleKey> Current = ruleKeys(Rules);
    for (const RuleKey &K : Previous)
      EXPECT_TRUE(Current.count(K))
          << "rule accepted under slack " << Slack
          << " lost under a strictly larger budget";
    EXPECT_GE(S.UnitsSpent, PreviousSpent);
    Previous = std::move(Current);
    PreviousSpent = S.UnitsSpent;
  }
  EXPECT_EQ(Previous.size(), 5u) << "the generous end accepts everything";
}

//===----------------------------------------------------------------------===//
// Harness contracts
//===----------------------------------------------------------------------===//

namespace {

GridConfig budgetGrid() {
  GridConfig Config;
  Config.Workloads = {"compress", "db"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {2, 3};
  Config.Params.Scale = 0.1;
  Config.Aos.Organizer = InlineOrganizerKind::Budget;
  return Config;
}

} // namespace

TEST(BudgetHarnessTest, RunTwiceIsBitIdenticalWithBudgetOrganizer) {
  RunConfig Config;
  Config.WorkloadName = "db";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Config.Params.Scale = 0.1;
  Config.Aos.Organizer = InlineOrganizerKind::Budget;
  RunResult A = runExperiment(Config);
  RunResult B = runExperiment(Config);
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.InlinedCalls, B.InlinedCalls);
  EXPECT_EQ(A.OptBytesGenerated, B.OptBytesGenerated);
  EXPECT_EQ(A.BudgetUnitsSpent, B.BudgetUnitsSpent);
  EXPECT_EQ(A.BudgetCandidatesAccepted, B.BudgetCandidatesAccepted);
  EXPECT_EQ(A.BudgetCandidatesPruned, B.BudgetCandidatesPruned);
  EXPECT_DOUBLE_EQ(A.EstimateErrorPct, B.EstimateErrorPct);
  EXPECT_GT(A.BudgetUnitsSpent, 0u) << "the organizer actually ran";
}

TEST(BudgetHarnessTest, SerialAndParallelBudgetSweepsAreByteIdentical) {
  GridConfig Config = budgetGrid();
  GridResults Serial = runGrid(Config);
  GridResults Parallel = runGridParallel(Config, /*Jobs=*/4);
  EXPECT_EQ(exportCsv(Serial, Config.Policies, Config.Depths),
            exportCsv(Parallel, Config.Policies, Config.Depths));
}

TEST(BudgetHarnessTest, ThresholdRunsReportZeroBudgetActivity) {
  RunConfig Config;
  Config.WorkloadName = "compress";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Config.Params.Scale = 0.1;
  // Default organizer: the budget counters must stay untouched, while
  // the calibration (pure bookkeeping on every install) still observes.
  RunResult R = runExperiment(Config);
  EXPECT_EQ(R.BudgetUnitsSpent, 0u);
  EXPECT_EQ(R.BudgetCandidatesAccepted, 0u);
  EXPECT_EQ(R.BudgetCandidatesPruned, 0u);
  EXPECT_GT(R.EstimateErrorPct, 0.0)
      << "calibration observes installs under every organizer";
}

TEST(BudgetHarnessTest, DefaultConfigReproducesTheCycleFingerprint) {
  // The organizer-off byte-identity contract: a default-configured run
  // still produces exactly the checked-in fingerprint line, so the
  // budget machinery (ledger writes, calibration updates) is provably
  // invisible to the simulated clock when not selected.
  const std::string Path =
      std::string(AOCI_GOLDEN_DIR) + "/cycle_fingerprint.golden";
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path;
  std::string GoldenLine;
  for (std::string Line; std::getline(In, Line);)
    if (Line.rfind("compress fixed ", 0) == 0) {
      GoldenLine = Line;
      break;
    }
  ASSERT_FALSE(GoldenLine.empty()) << "no 'compress fixed' fingerprint";

  WorkloadParams Params;
  Workload W = makeWorkload("compress", Params);
  VirtualMachine VM(W.Prog, CostModel{});
  FixedPolicy Policy(3);
  AdaptiveSystem Aos(VM, Policy);
  Aos.attach();
  for (MethodId Entry : W.Entries)
    VM.addThread(Entry);
  VM.run(20000000);

  const ExecutionCounters &C = VM.counters();
  const CodeManager &Code = VM.codeManager();
  std::ostringstream Line;
  Line << "compress fixed cycles=" << VM.cycles()
       << " instr=" << C.InstructionsExecuted
       << " calls=" << C.CallsExecuted
       << " inlined=" << C.InlinedCallsEntered
       << " guardTests=" << C.GuardTestsExecuted
       << " guardFalls=" << C.GuardFallbacks
       << " allocs=" << C.Allocations << " gcPauses=" << C.GcPauses
       << " gcCycles=" << C.GcCycles << " samples=" << C.SamplesTaken
       << " prologue=" << C.PrologueSamples
       << " compiles=" << Code.numCompiles(OptLevel::Baseline) << '/'
       << Code.numCompiles(OptLevel::Opt1) << '/'
       << Code.numCompiles(OptLevel::Opt2);
  EXPECT_EQ(Line.str(), GoldenLine);
}
