//===- tests/GoldenTest.cpp - Golden-file tests for report formats ---------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Exact-output fixtures for the machine-readable exporters whose format
// downstream figure scripts parse: CsvExport and PlanPrinter. The
// inputs are hand-built (no VM runs), so a mismatch can only mean the
// report format drifted. To intentionally change a format, regenerate
// the fixtures with AOCI_UPDATE_GOLDEN=1 and review the diff.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "harness/CsvExport.h"
#include "opt/PlanPrinter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace aoci;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(AOCI_GOLDEN_DIR) + "/" + Name;
}

/// Compares \p Actual against the checked-in fixture \p Name; with
/// AOCI_UPDATE_GOLDEN=1 in the environment it rewrites the fixture
/// instead.
void expectMatchesGolden(const std::string &Name,
                         const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "report format drifted from " << Path
      << "; if intentional, rerun with AOCI_UPDATE_GOLDEN=1 and review "
         "the fixture diff";
}

/// A RunResult with every exported field filled from a small integer
/// tag, so each CSV column exercises a distinct value.
RunResult syntheticRun(const std::string &Workload, PolicyKind Policy,
                       unsigned Depth, uint64_t Tag) {
  RunResult R;
  R.WorkloadName = Workload;
  R.Policy = Policy;
  R.MaxDepth = Depth;
  R.WallCycles = 1000000 + Tag * 1111;
  R.OptBytesResident = 40000 - Tag * 13;
  R.OptBytesGenerated = 90000 + Tag * 17;
  R.OptCompileCycles = 220000 - Tag * 19;
  R.BaselineCompileCycles = 50000 + Tag;
  for (unsigned C = 0; C != NumAosComponents; ++C)
    R.ComponentCycles[C] = (Tag + 1) * 100 * (C + 1);
  R.OptCompilations = static_cast<unsigned>(30 + Tag);
  R.GuardFallbacks = 500 + Tag * 7;
  R.InlinedCalls = 80000 + Tag * 23;
  R.SamplesTaken = 400 + Tag;
  return R;
}

/// A fixed two-workload, two-policy, two-depth grid.
GridResults syntheticGrid() {
  GridResults Results;
  uint64_t Tag = 0;
  for (const char *W : {"alpha", "beta"}) {
    Results.addBaseline(
        syntheticRun(W, PolicyKind::ContextInsensitive, 1, Tag++));
    for (PolicyKind Policy :
         {PolicyKind::Fixed, PolicyKind::Parameterless})
      for (unsigned D : {2u, 3u})
        Results.addCell(syntheticRun(W, Policy, D, Tag++));
  }
  return Results;
}

} // namespace

TEST(GoldenTest, CsvExportFormat) {
  GridResults Results = syntheticGrid();
  std::string Csv =
      exportCsv(Results, {PolicyKind::Fixed, PolicyKind::Parameterless},
                {2, 3});
  expectMatchesGolden("csv_export.golden", Csv);
}

TEST(GoldenTest, MetricsCsvFormat) {
  GridResults Results;
  RunMetrics M;
  M.WorkloadName = "alpha";
  M.Policy = PolicyKind::ContextInsensitive;
  M.MaxDepth = 1;
  M.IsBaseline = true;
  M.Worker = 0;
  M.QueueLatencyNs = 1200;
  M.HostNs = 4500000;
  M.RunCycles = 1000000;
  Results.addMetrics(M);
  M.Policy = PolicyKind::Fixed;
  M.MaxDepth = 3;
  M.IsBaseline = false;
  M.Worker = 2;
  M.QueueLatencyNs = 800;
  M.HostNs = 3900000;
  M.RunCycles = 980000;
  M.SteadyKnown = true;
  M.SteadyReached = true;
  M.WarmupCycles = 120000;
  M.SteadyCycles = 860000;
  M.FusedRuns = 12;
  M.FusedOps = 87;
  M.FusedBytes = 4176;
  M.WarmStarted = true;
  M.WarmApplied = 57;
  M.WarmDropped = 3;
  M.OptCompileCycles = 180000;
  Results.addMetrics(M);
  M.MaxDepth = 4;
  M.Worker = 1;
  M.QueueLatencyNs = 950;
  M.HostNs = 4100000;
  M.RunCycles = 990000;
  M.SteadyReached = false;
  M.WarmupCycles = 990000;
  M.SteadyCycles = 0;
  M.FusedRuns = 0;
  M.FusedOps = 0;
  M.FusedBytes = 0;
  M.WarmStarted = false;
  M.WarmApplied = 0;
  M.WarmDropped = 0;
  M.OptCompileCycles = 0;
  Results.addMetrics(M);
  expectMatchesGolden("metrics_csv.golden", exportMetricsCsv(Results));
}

TEST(GoldenTest, PlanPrinterFormat) {
  // The Figure 1 shape in miniature: runTest inlines get twice; each
  // copy guard-inlines one hashCode implementation, and one nests a
  // proven helper.
  ProgramBuilder B;
  ClassId Main = B.addClass("Main");
  ClassId Map = B.addClass("HashMap");
  ClassId KeyA = B.addClass("KeyA");
  MethodId RunTest =
      B.declareMethod(Main, "runTest", MethodKind::Static, 0, true);
  MethodId Get = B.declareMethod(Map, "get", MethodKind::Virtual, 1, true);
  MethodId HashA =
      B.declareMethod(KeyA, "hashCode", MethodKind::Virtual, 0, true);
  MethodId Helper =
      B.declareMethod(KeyA, "helper", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Helper);
    E.iconst(1).ret();
    E.finish();
  }
  {
    CodeEmitter E = B.code(HashA);
    E.invokeStatic(Helper).ret();
    E.finish();
  }
  {
    CodeEmitter E = B.code(Get);
    E.load(1).invokeVirtual(HashA).ret();
    E.finish();
  }
  {
    CodeEmitter E = B.code(RunTest);
    E.newObject(Map).newObject(KeyA).invokeVirtual(Get).pop();
    E.newObject(Map).newObject(KeyA).invokeVirtual(Get).ret();
    E.finish();
  }
  B.setEntry(RunTest);
  Program P = B.build();

  CodeVariant Variant;
  Variant.M = RunTest;
  Variant.Level = OptLevel::Opt2;
  Variant.CodeBytes = 1930;
  Variant.CompileCycles = 48500;
  InlineNode::SiteDecision &First = Variant.Plan.Root.getOrCreate(2);
  InlineCase &GetCase1 = First.Cases.emplace_back();
  GetCase1.Callee = Get;
  GetCase1.Guarded = false;
  GetCase1.BodyUnits = 12;
  GetCase1.Body = std::make_unique<InlineNode>();
  InlineCase &Hash1 = GetCase1.Body->getOrCreate(1).Cases.emplace_back();
  Hash1.Callee = HashA;
  Hash1.Guarded = true;
  Hash1.BodyUnits = 5;
  Hash1.Body = std::make_unique<InlineNode>();
  InlineCase &Nested = Hash1.Body->getOrCreate(0).Cases.emplace_back();
  Nested.Callee = Helper;
  Nested.Guarded = false;
  Nested.BodyUnits = 2;
  InlineNode::SiteDecision &Second = Variant.Plan.Root.getOrCreate(6);
  InlineCase &GetCase2 = Second.Cases.emplace_back();
  GetCase2.Callee = Get;
  GetCase2.Guarded = true;
  GetCase2.BodyUnits = 12;
  Variant.Plan.recountStatistics();

  expectMatchesGolden("plan_printer.golden", describeVariant(P, Variant));
}
