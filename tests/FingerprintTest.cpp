//===- tests/FingerprintTest.cpp - Simulated-clock regression fingerprint --===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Runs every registered workload briefly under every policy and compares
// the exact simulated clock and ExecutionCounters against a checked-in
// fixture. Host-side interpreter optimizations must never move a single
// simulated cycle (see DESIGN.md "Host fast path vs. simulated clock"),
// so any drift here is a bug in a hot-path refactor, not a formatting
// nit. To intentionally change the cost model or the adaptive system's
// behaviour, regenerate with AOCI_UPDATE_GOLDEN=1 and review the diff.
//
//===----------------------------------------------------------------------===//

#include "core/AdaptiveSystem.h"
#include "policy/ContextPolicy.h"
#include "vm/VirtualMachine.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace aoci;

namespace {

/// Cycle budget per run: enough timer samples (~100) for the adaptive
/// system to recompile, enter inlined code, and exercise guard-fallback
/// paths, small enough that the full workload x policy matrix stays fast.
constexpr uint64_t FingerprintCycleLimit = 20000000;

std::string fingerprintLine(const std::string &Workload, PolicyKind Policy,
                            const VirtualMachine &VM) {
  const ExecutionCounters &C = VM.counters();
  const CodeManager &Code = VM.codeManager();
  std::ostringstream Out;
  Out << Workload << ' ' << policyKindName(Policy)
      << " cycles=" << VM.cycles()
      << " instr=" << C.InstructionsExecuted
      << " calls=" << C.CallsExecuted
      << " inlined=" << C.InlinedCallsEntered
      << " guardTests=" << C.GuardTestsExecuted
      << " guardFalls=" << C.GuardFallbacks
      << " allocs=" << C.Allocations
      << " gcPauses=" << C.GcPauses
      << " gcCycles=" << C.GcCycles
      << " samples=" << C.SamplesTaken
      << " prologue=" << C.PrologueSamples
      << " compiles=" << Code.numCompiles(OptLevel::Baseline) << '/'
      << Code.numCompiles(OptLevel::Opt1) << '/'
      << Code.numCompiles(OptLevel::Opt2);
  return Out.str();
}

std::string fingerprintAll(FuseConfig Fuse = FuseConfig{}) {
  std::ostringstream Out;
  for (const std::string &Name : workloadNames()) {
    for (PolicyKind Policy : allPolicyKinds()) {
      WorkloadParams Params;
      Workload W = makeWorkload(Name, Params);
      CostModel Model;
      Model.Fuse = Fuse;
      VirtualMachine VM(W.Prog, Model);
      std::unique_ptr<ContextPolicy> P = makePolicy(Policy, 3);
      AdaptiveSystem Aos(VM, *P);
      Aos.attach();
      for (MethodId Entry : W.Entries)
        VM.addThread(Entry);
      VM.run(FingerprintCycleLimit);
      Out << fingerprintLine(Name, Policy, VM) << '\n';
    }
  }
  // The default grid never reaches a GC pause inside the budget, so pin
  // the collector's cycle accounting with an artificially small trigger
  // on the allocation-heavy workloads.
  for (const std::string &Name :
       {std::string("SPECjbb2000"), std::string("mtrt")}) {
    WorkloadParams Params;
    Workload W = makeWorkload(Name, Params);
    CostModel Model;
    Model.Fuse = Fuse;
    Model.GcTriggerBytes = 50000;
    VirtualMachine VM(W.Prog, Model);
    std::unique_ptr<ContextPolicy> P = makePolicy(PolicyKind::Fixed, 3);
    AdaptiveSystem Aos(VM, *P);
    Aos.attach();
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run(FingerprintCycleLimit);
    Out << fingerprintLine(Name + "+gc", PolicyKind::Fixed, VM) << '\n';
  }
  return Out.str();
}

/// Same update-or-compare protocol as GoldenTest: AOCI_UPDATE_GOLDEN=1
/// rewrites the fixture instead of comparing.
void expectMatchesGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = std::string(AOCI_GOLDEN_DIR) + "/" + Name;
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream OutFile(Path, std::ios::binary);
    ASSERT_TRUE(OutFile) << "cannot write " << Path;
    OutFile << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "simulated cycles or counters drifted from " << Path
      << "; host-side optimizations must be clock-neutral. If the cost "
         "model or adaptive behaviour changed intentionally, rerun with "
         "AOCI_UPDATE_GOLDEN=1 and review the fixture diff";
}

TEST(CycleFingerprintTest, AllWorkloadsAllPolicies) {
  expectMatchesGolden("cycle_fingerprint.golden", fingerprintAll());
}

TEST(CycleFingerprintTest, SuperinstructionFusionIsClockNeutral) {
  // The fusion bit-identity contract at matrix scale: the whole workload
  // x policy fingerprint, with every variant down to baseline fused into
  // batched handlers, must match the fusion-off golden byte for byte.
  FuseConfig Fuse;
  Fuse.Enabled = true;
  Fuse.MinLevel = 0;
  expectMatchesGolden("cycle_fingerprint.golden", fingerprintAll(Fuse));
}

} // namespace
