//===- tests/ProfileTest.cpp - Unit tests for src/profile -------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "profile/CallingContextTree.h"
#include "support/Rng.h"
#include "profile/DynamicCallGraph.h"
#include "profile/InlineRules.h"
#include "profile/Listeners.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

Trace makeTrace(std::vector<ContextPair> Context, MethodId Callee) {
  Trace T;
  T.Context = std::move(Context);
  T.Callee = Callee;
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Context types and Equation 3
//===----------------------------------------------------------------------===//

TEST(ContextTest, TraceEqualityAndHash) {
  Trace A = makeTrace({{1, 2}, {3, 4}}, 9);
  Trace B = makeTrace({{1, 2}, {3, 4}}, 9);
  Trace C = makeTrace({{1, 2}}, 9);
  Trace D = makeTrace({{1, 2}, {3, 5}}, 9);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  TraceHash H;
  EXPECT_EQ(H(A), H(B));
  EXPECT_NE(H(A), H(C));
}

TEST(ContextTest, PartialMatchAgreesOnCommonPrefix) {
  // Equation 3: agree on the first min(k, j) innermost pairs.
  std::vector<ContextPair> Comp = {{10, 1}, {20, 2}};
  EXPECT_TRUE(partialContextMatch(Comp, {{10, 1}}));
  EXPECT_TRUE(partialContextMatch(Comp, {{10, 1}, {20, 2}}));
  EXPECT_TRUE(partialContextMatch(Comp, {{10, 1}, {20, 2}, {30, 3}}))
      << "rule with MORE context than the compilation context applies";
  EXPECT_FALSE(partialContextMatch(Comp, {{10, 1}, {21, 2}}));
  EXPECT_FALSE(partialContextMatch(Comp, {{11, 1}}));
  EXPECT_TRUE(partialContextMatch({}, {{1, 1}}))
      << "empty compilation context matches vacuously";
}

TEST(ContextTest, ToStringIsOutermostFirst) {
  FigureOneProgram F = makeFigureOne(1);
  Trace T = makeTrace({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}},
                      F.MyKeyHashCode);
  std::string S = T.toString(F.P);
  EXPECT_NE(S.find("HashMapTest.runTest"), std::string::npos);
  EXPECT_NE(S.find("HashMap.get"), std::string::npos);
  EXPECT_NE(S.find("MyKey.hashCode"), std::string::npos);
  EXPECT_LT(S.find("runTest"), S.find("HashMap.get"))
      << "outermost caller prints first";
}

//===----------------------------------------------------------------------===//
// DynamicCallGraph
//===----------------------------------------------------------------------===//

TEST(DcgTest, WeightsAccumulatePerDistinctTrace) {
  DynamicCallGraph Dcg;
  Trace A = makeTrace({{1, 0}}, 5);
  Trace B = makeTrace({{1, 0}, {2, 3}}, 5);
  Dcg.addSample(A);
  Dcg.addSample(A, 2.0);
  Dcg.addSample(B);
  EXPECT_DOUBLE_EQ(Dcg.weight(A), 3.0);
  EXPECT_DOUBLE_EQ(Dcg.weight(B), 1.0);
  EXPECT_DOUBLE_EQ(Dcg.totalWeight(), 4.0);
  EXPECT_EQ(Dcg.numTraces(), 2u)
      << "partial matches are NOT merged at collection time (Section 3.3)";
}

TEST(DcgTest, DecayScalesAndDropsDust) {
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{1, 0}}, 5), 10.0);
  Dcg.addSample(makeTrace({{2, 0}}, 5), 0.02);
  Dcg.decay(0.5, /*DropBelow=*/0.05);
  EXPECT_DOUBLE_EQ(Dcg.weight(makeTrace({{1, 0}}, 5)), 5.0);
  EXPECT_EQ(Dcg.numTraces(), 1u) << "dust entry dropped";
  EXPECT_DOUBLE_EQ(Dcg.totalWeight(), 5.0);
}

TEST(DcgTest, SiteDistributionAggregatesOverContexts) {
  DynamicCallGraph Dcg;
  // Same innermost site (7, 4), two callees, distinguished by context.
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 100), 3.0);
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 200), 1.0);
  Dcg.addSample(makeTrace({{9, 9}}, 100), 5.0); // different site
  auto Dist = Dcg.siteDistribution(7, 4);
  EXPECT_DOUBLE_EQ(Dist.Total, 4.0);
  ASSERT_EQ(Dist.ByCallee.size(), 2u);
  EXPECT_EQ(Dist.ByCallee[0].first, 100u);
  EXPECT_DOUBLE_EQ(Dist.ByCallee[0].second, 3.0);
  EXPECT_EQ(Dist.ByCallee[1].first, 200u);
}

TEST(DcgTest, MinContextSkewDetectsResolution) {
  DynamicCallGraph Dcg;
  // Context (1,0): always callee 100. Context (2,0): always callee 200.
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 100), 10.0);
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 200), 10.0);
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4), 1.0)
      << "each context is monomorphic: imprecision resolved";
  // Now context (1,0) itself splits 50/50: unresolved.
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 200), 10.0);
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4), 0.5);
}

TEST(DcgTest, MinContextSkewIgnoresLightGroups) {
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 100), 10.0);
  // A tiny 50/50 group below the weight floor is ignored.
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 100), 0.4);
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 200), 0.4);
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4, /*MinGroupWeight=*/1.0), 1.0);
}

TEST(DcgTest, MinContextSkewDepthFilterAndSentinel) {
  DynamicCallGraph Dcg;
  // Depth-1 traces 50/50; depth-2 traces monomorphic per context.
  Dcg.addSample(makeTrace({{7, 4}}, 100), 10.0);
  Dcg.addSample(makeTrace({{7, 4}}, 200), 10.0);
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 100), 10.0);
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 200), 10.0);
  // Unfiltered: the stale depth-1 group drags the verdict down.
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4), 0.5);
  // Filtered to depth 2: resolved.
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4, 1.0, 2), 1.0);
  // Filtered to a depth with no data: the -1 "no groups" sentinel.
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(7, 4, 1.0, 3), -1.0);
  // Unknown site: sentinel as well.
  EXPECT_DOUBLE_EQ(Dcg.minContextSkew(9, 9, 1.0, 1), -1.0);
}

TEST(InlineRuleSetTest, FindLocatesExactTraceOnly) {
  InlineRuleSet Rules;
  InliningRule R;
  R.T = makeTrace({{7, 4}}, 100);
  R.Weight = 5;
  R.CreatedAtCycle = 42;
  Rules.add(R);
  const InliningRule *Found = Rules.find(makeTrace({{7, 4}}, 100));
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->CreatedAtCycle, 42u);
  EXPECT_EQ(Rules.find(makeTrace({{7, 4}}, 101)), nullptr);
  EXPECT_EQ(Rules.find(makeTrace({{7, 4}, {1, 0}}, 100)), nullptr)
      << "deeper trace with the same innermost pair is a different rule";
}

TEST(DcgTest, AllSitesSortedUnique) {
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{9, 1}}, 5));
  Dcg.addSample(makeTrace({{7, 4}, {1, 0}}, 5));
  Dcg.addSample(makeTrace({{7, 4}, {2, 0}}, 6));
  auto Sites = Dcg.allSites();
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_EQ(Sites[0].Caller, 7u);
  EXPECT_EQ(Sites[1].Caller, 9u);
}

//===----------------------------------------------------------------------===//
// InlineRuleSet
//===----------------------------------------------------------------------===//

TEST(InlineRuleSetTest, ApplicableRulesRespectEquationThree) {
  InlineRuleSet Rules;
  InliningRule R1;
  R1.T = makeTrace({{7, 4}}, 100);
  R1.Weight = 5;
  Rules.add(R1);
  InliningRule R2;
  R2.T = makeTrace({{7, 4}, {1, 0}}, 200);
  R2.Weight = 3;
  Rules.add(R2);
  InliningRule R3;
  R3.T = makeTrace({{8, 2}}, 100);
  R3.Weight = 9;
  Rules.add(R3);
  EXPECT_EQ(Rules.size(), 3u);

  // Compilation context [(7,4)] (compiling the caller standalone):
  // both (7,4)-rooted rules apply, the (8,2) rule does not.
  auto A = Rules.applicableRules({{7, 4}});
  EXPECT_EQ(A.size(), 2u);

  // Context [(7,4),(1,0)]: the deep rule for context (2,0) would not
  // apply, but R2's context matches exactly.
  auto B = Rules.applicableRules({{7, 4}, {1, 0}});
  EXPECT_EQ(B.size(), 2u);

  // Context [(7,4),(2,0)]: only the shallow R1 applies.
  auto C = Rules.applicableRules({{7, 4}, {2, 0}});
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C.front()->T.Callee, 100u);
}

TEST(InlineRuleSetTest, DuplicateTraceReplaces) {
  InlineRuleSet Rules;
  InliningRule R;
  R.T = makeTrace({{7, 4}}, 100);
  R.Weight = 5;
  Rules.add(R);
  R.Weight = 9;
  Rules.add(R);
  EXPECT_EQ(Rules.size(), 1u);
  auto A = Rules.applicableRules({{7, 4}});
  ASSERT_EQ(A.size(), 1u);
  EXPECT_DOUBLE_EQ(A.front()->Weight, 9.0);
}

TEST(InlineRuleSetTest, RulesForCallerFindsAllSites) {
  InlineRuleSet Rules;
  InliningRule R1;
  R1.T = makeTrace({{7, 4}}, 100);
  Rules.add(R1);
  InliningRule R2;
  R2.T = makeTrace({{7, 9}}, 101);
  Rules.add(R2);
  InliningRule R3;
  R3.T = makeTrace({{8, 1}}, 102);
  Rules.add(R3);
  EXPECT_EQ(Rules.rulesForCaller(7).size(), 2u);
  EXPECT_EQ(Rules.rulesForCaller(8).size(), 1u);
  EXPECT_TRUE(Rules.rulesForCaller(99).empty());
}

TEST(InlineRuleSetTest, ClearEmpties) {
  InlineRuleSet Rules;
  InliningRule R;
  R.T = makeTrace({{7, 4}}, 100);
  Rules.add(R);
  Rules.clear();
  EXPECT_TRUE(Rules.empty());
  EXPECT_TRUE(Rules.applicableRules({{7, 4}}).empty());
}

//===----------------------------------------------------------------------===//
// CallingContextTree
//===----------------------------------------------------------------------===//

TEST(CctTest, ExactAndPrefixWeights) {
  CallingContextTree Cct;
  Trace Short = makeTrace({{7, 4}}, 100);
  Trace Long = makeTrace({{7, 4}, {1, 0}}, 100);
  Cct.addSample(Short, 2.0);
  Cct.addSample(Long, 3.0);
  EXPECT_DOUBLE_EQ(Cct.exactWeight(Short), 2.0);
  EXPECT_DOUBLE_EQ(Cct.exactWeight(Long), 3.0);
  EXPECT_DOUBLE_EQ(Cct.prefixWeight(Short), 5.0)
      << "the longer trace extends through the shorter's node";
  EXPECT_DOUBLE_EQ(Cct.prefixWeight(Long), 3.0);
  EXPECT_EQ(Cct.maxDepth(), 3u);
}

TEST(CctTest, CrossValidatesWithDcg) {
  // The same sample stream must be recoverable from both representations.
  Rng R(77);
  DynamicCallGraph Dcg;
  CallingContextTree Cct;
  std::vector<Trace> Distinct;
  for (int I = 0; I != 20; ++I)
    Distinct.push_back(makeTrace(
        {{static_cast<MethodId>(R.nextBelow(4)),
          static_cast<BytecodeIndex>(R.nextBelow(3))},
         {static_cast<MethodId>(R.nextBelow(4) + 10), 0}},
        static_cast<MethodId>(R.nextBelow(5) + 100)));
  for (int I = 0; I != 500; ++I) {
    const Trace &T = Distinct[R.nextBelow(Distinct.size())];
    Dcg.addSample(T);
    Cct.addSample(T);
  }
  for (const Trace &T : Distinct)
    EXPECT_DOUBLE_EQ(Dcg.weight(T), Cct.exactWeight(T));
}

TEST(CctTest, MissingTraceHasZeroWeight) {
  CallingContextTree Cct;
  Cct.addSample(makeTrace({{7, 4}}, 100));
  EXPECT_DOUBLE_EQ(Cct.exactWeight(makeTrace({{7, 5}}, 100)), 0.0);
  EXPECT_DOUBLE_EQ(Cct.prefixWeight(makeTrace({{7, 4}}, 101)), 0.0);
}

//===----------------------------------------------------------------------===//
// Listeners (driven by real VM runs over the Figure 1 program)
//===----------------------------------------------------------------------===//

namespace {

/// Sink wiring both listeners to a VM for listener tests.
struct ListenerSink : SampleSink {
  MethodListener Methods;
  TraceListener Traces;
  std::vector<MethodId> AllMethods;
  std::vector<Trace> AllTraces;

  ListenerSink(const ContextPolicy &Policy, bool InlineAware = true)
      : Methods(8), Traces(Policy, 8, InlineAware) {
    Traces.enableStatistics();
  }

  void onSample(VirtualMachine &VM, ThreadState &T,
                bool AtPrologue) override {
    if (Methods.sample(VM, T))
      for (MethodId M : Methods.drain())
        AllMethods.push_back(M);
    if (AtPrologue && Traces.sample(VM, T))
      for (Trace &Tr : Traces.drain())
        AllTraces.push_back(std::move(Tr));
  }

  void flush() {
    for (MethodId M : Methods.drain())
      AllMethods.push_back(M);
    for (Trace &Tr : Traces.drain())
      AllTraces.push_back(std::move(Tr));
  }
};

} // namespace

TEST(ListenerTest, MethodListenerSeesHotMethods) {
  FigureOneProgram F = makeFigureOne(60000);
  VirtualMachine VM(F.P);
  ContextInsensitivePolicy Policy;
  ListenerSink Sink(Policy);
  VM.setSampleSink(&Sink);
  VM.addThread(F.P.entryMethod());
  VM.run();
  Sink.flush();
  ASSERT_GT(Sink.AllMethods.size(), 20u);
  // The hot methods must dominate the samples: get / runTest / hashCode
  // variants / main.
  size_t HotCount = 0;
  for (MethodId M : Sink.AllMethods)
    if (M == F.Get || M == F.RunTest || M == F.Main ||
        M == F.MyKeyHashCode || M == F.ObjHashCode || M == F.MyKeyEquals ||
        M == F.IntValue)
      ++HotCount;
  EXPECT_GT(HotCount * 10, Sink.AllMethods.size() * 9)
      << "at least 90% of samples land in the hot kernel";
}

TEST(ListenerTest, CinsTraceListenerRecordsDepthOneEdges) {
  FigureOneProgram F = makeFigureOne(60000);
  VirtualMachine VM(F.P);
  ContextInsensitivePolicy Policy;
  ListenerSink Sink(Policy);
  VM.setSampleSink(&Sink);
  VM.addThread(F.P.entryMethod());
  VM.run();
  Sink.flush();
  ASSERT_FALSE(Sink.AllTraces.empty());
  for (const Trace &T : Sink.AllTraces)
    EXPECT_EQ(T.depth(), 1u);
}

TEST(ListenerTest, ContextTraceListenerDisambiguatesHashCodeSites) {
  // The paper's Figure 2: with depth-2 traces, the hashCode samples from
  // HashMap.get split into two monomorphic contexts.
  FigureOneProgram F = makeFigureOne(120000);
  VirtualMachine VM(F.P);
  FixedPolicy Policy(2);
  ListenerSink Sink(Policy);
  VM.setSampleSink(&Sink);
  VM.addThread(F.P.entryMethod());
  VM.run();
  Sink.flush();

  unsigned Cs1MyKey = 0, Cs1Obj = 0, Cs2MyKey = 0, Cs2Obj = 0;
  for (const Trace &T : Sink.AllTraces) {
    if (T.depth() != 2)
      continue;
    if (T.Context[0].Caller != F.Get ||
        T.Context[0].Site != F.HashCodeSite)
      continue;
    if (T.Context[1].Caller != F.RunTest)
      continue;
    const bool FromCs1 = T.Context[1].Site == F.GetSite1;
    if (T.Callee == F.MyKeyHashCode)
      (FromCs1 ? Cs1MyKey : Cs2MyKey)++;
    else if (T.Callee == F.ObjHashCode)
      (FromCs1 ? Cs1Obj : Cs2Obj)++;
  }
  EXPECT_GT(Cs1MyKey + Cs2Obj, 0u);
  EXPECT_EQ(Cs1Obj, 0u)
      << "call site 1 must never reach Object.hashCode (Figure 2c)";
  EXPECT_EQ(Cs2MyKey, 0u)
      << "call site 2 must never reach MyKey.hashCode (Figure 2c)";
}

TEST(ListenerTest, TraceListenerChargesMoreThanEdgeListener) {
  // Deterministic per-walk comparison: pause the VM on a deep stack and
  // sample it once with a depth-1 and once with a depth-4 policy.
  FigureOneProgram F = makeFigureOne(60000);
  VirtualMachine VM(F.P);
  VM.addThread(F.P.entryMethod());
  ThreadState &T = *VM.threads().front();
  // Step until the stack is at least 4 source frames deep.
  for (int Guard = 0; Guard < 100000 && T.Frames.size() < 4; ++Guard)
    VM.step(T, 1);
  ASSERT_GE(T.Frames.size(), 4u);

  ContextInsensitivePolicy Shallow;
  FixedPolicy Deep(4);
  TraceListener EdgeL(Shallow), TraceL(Deep);
  uint64_t Before = VM.overheadMeter().cycles(AosComponent::Listeners);
  EdgeL.sample(VM, T);
  uint64_t EdgeCost =
      VM.overheadMeter().cycles(AosComponent::Listeners) - Before;
  Before = VM.overheadMeter().cycles(AosComponent::Listeners);
  TraceL.sample(VM, T);
  uint64_t TraceCost =
      VM.overheadMeter().cycles(AosComponent::Listeners) - Before;
  EXPECT_GT(TraceCost, EdgeCost)
      << "context-sensitive stack walks cost more (Figure 6)";
  const CostModel &Model = VM.costModel();
  EXPECT_EQ(EdgeCost, Model.EdgeSampleCost);
  EXPECT_EQ(TraceCost, Model.EdgeSampleCost + 2 * Model.TraceFrameCost)
      << "depth 3 recorded from a 4-frame stack walks 2 extra frames";
}

TEST(ListenerTest, StatisticsSeeParameterlessCallees) {
  FigureOneProgram F = makeFigureOne(60000);
  VirtualMachine VM(F.P);
  FixedPolicy Policy(4);
  ListenerSink Sink(Policy);
  VM.setSampleSink(&Sink);
  VM.addThread(F.P.entryMethod());
  VM.run();
  const TraceStatistics &Stats = Sink.Traces.statistics();
  ASSERT_GT(Stats.numSamples(), 0u);
  // hashCode and intValue are parameterless callees; get/equals are not.
  EXPECT_GT(Stats.calleeParameterlessFraction(), 0.0);
  EXPECT_LT(Stats.calleeParameterlessFraction(), 1.0);
  // main (static) is always within the chain, so a class method appears
  // within 5 levels of every sample.
  EXPECT_GT(Stats.classMethodWithin(5), 0.95);
}
