//===- tests/ScenarioReplayTest.cpp - Fuzz-corpus replay -------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Replays every checked-in `.scn` reproducer under tests/scenarios/.
// Each file was found by `aoci fuzz`, shrunk, and committed with an
// expect block recording the differential it demonstrates; this test is
// the contract that those differentials stay real. A failure here means
// a policy/cost-model change erased (or flipped) a known differential —
// which may be intentional, in which case regenerate the corpus with
// the `aoci fuzz` invocation documented in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "harness/Fuzzer.h"
#include "workload/scenario/ScenarioSpec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace aoci;

namespace {

struct CorpusEntry {
  std::string Path;
  ScenarioSpec Spec;
};

std::vector<CorpusEntry> loadCorpus() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(AOCI_SCENARIO_DIR))
    if (Entry.is_regular_file() && Entry.path().extension() == ".scn")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  std::vector<CorpusEntry> Corpus;
  for (const std::filesystem::path &P : Paths) {
    std::ifstream In(P);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CorpusEntry E;
    E.Path = P.string();
    std::string Error;
    EXPECT_TRUE(parseScenario(Buffer.str(), E.Spec, Error))
        << P << ": " << Error;
    Corpus.push_back(std::move(E));
  }
  return Corpus;
}

} // namespace

TEST(ScenarioReplayTest, CorpusIsWellFormed) {
  std::vector<CorpusEntry> Corpus = loadCorpus();
  ASSERT_FALSE(Corpus.empty())
      << "no .scn reproducers under " << AOCI_SCENARIO_DIR;
  for (const CorpusEntry &E : Corpus) {
    SCOPED_TRACE(E.Path);
    EXPECT_TRUE(E.Spec.HasExpectation)
        << "corpus entries must carry an expect block";
    EXPECT_NE(E.Spec.Expect.MinDeltaPct, 0.0);
    PolicyKind K;
    EXPECT_TRUE(parsePolicyKind(E.Spec.Expect.PolicyA, K));
    EXPECT_TRUE(parsePolicyKind(E.Spec.Expect.PolicyB, K));
    // Canonical form: a reproducer must round-trip unchanged, so edits
    // and regenerations diff cleanly.
    std::ifstream In(E.Path);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    EXPECT_EQ(Buffer.str(), printScenario(E.Spec))
        << "not in canonical printScenario() form";
  }
}

TEST(ScenarioReplayTest, EveryReproducerStillReproduces) {
  for (const CorpusEntry &E : loadCorpus()) {
    SCOPED_TRACE(E.Path);
    if (!E.Spec.HasExpectation)
      continue;
    const double Delta = replayScenario(E.Spec);
    const double Recorded = E.Spec.Expect.MinDeltaPct;
    EXPECT_GT(Delta * Recorded, 0.0)
        << "differential flipped sign: recorded " << Recorded
        << "%, replayed " << Delta << "%";
    // The magnitude may drift as the cost model evolves, but a healthy
    // reproducer keeps at least half its recorded differential.
    EXPECT_GE(std::abs(Delta), 0.5 * std::abs(Recorded))
        << "differential mostly evaporated: recorded " << Recorded
        << "%, replayed " << Delta << "%";
    EXPECT_EQ(replayScenario(E.Spec), Delta)
        << "replay must be deterministic";
  }
}
