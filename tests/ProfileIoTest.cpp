//===- tests/ProfileIoTest.cpp - Profile persistence tests ------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "core/AdaptiveSystem.h"
#include "profile/ProfileIo.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace aoci;

namespace {

Trace makeTrace(std::vector<ContextPair> Ctx, MethodId Callee) {
  Trace T;
  T.Context = std::move(Ctx);
  T.Callee = Callee;
  return T;
}

} // namespace

TEST(ProfileIoTest, RoundTripPreservesWeightsAndTraces) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode), 3.5);
  Dcg.addSample(
      makeTrace({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
                F.ObjHashCode),
      7.25);

  std::string Text = serializeProfile(F.P, Dcg);
  DynamicCallGraph Back;
  std::string Error;
  ASSERT_TRUE(deserializeProfile(F.P, Text, Back, Error)) << Error;
  EXPECT_EQ(Back.numTraces(), 2u);
  EXPECT_DOUBLE_EQ(
      Back.weight(makeTrace({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode)),
      3.5);
  EXPECT_DOUBLE_EQ(
      Back.weight(makeTrace(
          {{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
          F.ObjHashCode)),
      7.25);
}

TEST(ProfileIoTest, SerializationIsDeterministic) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph A, B;
  // Insert in different orders; output must match.
  A.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  A.addSample(makeTrace({{F.Get, 2}}, F.ObjHashCode), 2);
  B.addSample(makeTrace({{F.Get, 2}}, F.ObjHashCode), 2);
  B.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  EXPECT_EQ(serializeProfile(F.P, A), serializeProfile(F.P, B));
}

TEST(ProfileIoTest, RejectsMalformedInput) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  std::string Error;
  EXPECT_FALSE(deserializeProfile(F.P, "notaweight a:1 => b\n", Dcg, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(deserializeProfile(
      F.P, "1.0 Unknown.method:3 => MyKey.hashCode\n", Dcg, Error));
  EXPECT_NE(Error.find("unknown method"), std::string::npos);
  EXPECT_FALSE(deserializeProfile(
      F.P, "1.0 HashMap.get:4\n", Dcg, Error)); // No callee.
  EXPECT_FALSE(deserializeProfile(F.P, "-2 HashMap.get:4 => MyKey.hashCode\n",
                                  Dcg, Error));
  EXPECT_EQ(Dcg.numTraces(), 0u) << "failed parses leave the DCG empty";
}

TEST(ProfileIoTest, EmptyTextYieldsEmptyProfile) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  std::string Error;
  EXPECT_TRUE(deserializeProfile(F.P, "", Dcg, Error));
  EXPECT_EQ(Dcg.numTraces(), 0u);
}

TEST(ProfileIoTest, LiveProfileRoundTripsThroughText) {
  // Collect a real profile online, serialize, reload into a fresh run.
  FigureOneProgram F = makeFigureOne(200000);
  std::string Text;
  {
    VirtualMachine VM(F.P);
    auto Policy = makePolicy(PolicyKind::Fixed, 2);
    AdaptiveSystem Aos(VM, *Policy);
    Aos.attach();
    VM.addThread(F.P.entryMethod());
    VM.run();
    Text = serializeProfile(F.P, Aos.dcg());
    EXPECT_GT(Aos.dcg().numTraces(), 0u);
  }

  FigureOneProgram F2 = makeFigureOne(200000);
  DynamicCallGraph Training;
  std::string Error;
  ASSERT_TRUE(deserializeProfile(F2.P, Text, Training, Error)) << Error;
  EXPECT_GT(Training.numTraces(), 0u);

  VirtualMachine VM(F2.P);
  auto Policy = makePolicy(PolicyKind::Fixed, 2);
  AdaptiveSystem Aos(VM, *Policy);
  Aos.seedProfile(Training);
  EXPECT_FALSE(Aos.rules().empty())
      << "seeding codifies rules before execution starts";
  Aos.attach();
  unsigned T = VM.addThread(F2.P.entryMethod());
  VM.run();
  EXPECT_EQ(VM.threads()[T]->Result.asInt(), 3 * 200000);
}

TEST(ProfileIoTest, SeededRunSkipsTheWarmUp) {
  struct Outcome {
    uint64_t Fallbacks;
    uint64_t CompileCycles;
    uint64_t Compilations;
  };
  auto runWithSeed = [](bool Seed) {
    FigureOneProgram Train = makeFigureOne(300000);
    std::string Text;
    {
      VirtualMachine VM(Train.P);
      auto Policy = makePolicy(PolicyKind::Fixed, 2);
      AdaptiveSystem Aos(VM, *Policy);
      Aos.attach();
      VM.addThread(Train.P.entryMethod());
      VM.run();
      Text = serializeProfile(Train.P, Aos.dcg());
    }
    FigureOneProgram Prod = makeFigureOne(300000);
    VirtualMachine VM(Prod.P);
    auto Policy = makePolicy(PolicyKind::Fixed, 2);
    AdaptiveSystem Aos(VM, *Policy);
    if (Seed) {
      DynamicCallGraph Training;
      std::string Error;
      EXPECT_TRUE(deserializeProfile(Prod.P, Text, Training, Error));
      Aos.seedProfile(Training);
    }
    Aos.attach();
    VM.addThread(Prod.P.entryMethod());
    VM.run();
    return Outcome{VM.counters().GuardFallbacks,
                   VM.codeManager().optCompileCycles(),
                   Aos.stats().OptCompilations};
  };
  Outcome Seeded = runWithSeed(true);
  Outcome Cold = runWithSeed(false);
  // The offline pipeline's wins: no transient mispredictions while the
  // profile warms up, and fewer/cheaper optimizing compilations. (Wall
  // clock can go either way — an offline profile also freezes decisions
  // the online system would keep refining, which is the flip side the
  // paper's related-work discussion alludes to.)
  EXPECT_LT(Seeded.Fallbacks, Cold.Fallbacks / 2 + 1);
  EXPECT_LE(Seeded.Compilations, Cold.Compilations);
  EXPECT_LE(Seeded.CompileCycles, Cold.CompileCycles);
}

TEST(ProfileIoTest, V1DiagnosticsNameTheOffendingToken) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  std::string Error;
  EXPECT_FALSE(deserializeProfile(F.P, "bogus HashMap.get:4 => MyKey.hashCode\n",
                                  Dcg, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
  EXPECT_NE(Error.find("'bogus'"), std::string::npos) << Error;
  EXPECT_FALSE(deserializeProfile(
      F.P, "1.0 HashMap.get:4 => MyKey.hashCode Obj.hashCode\n", Dcg, Error));
  EXPECT_NE(Error.find("'Obj.hashCode'"), std::string::npos) << Error;
  EXPECT_FALSE(deserializeProfile(F.P, "\n\n1.0 HashMap.get:4\n", Dcg, Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// The versioned v2 format (docs/profile-format.md).
//===----------------------------------------------------------------------===//

namespace {

/// A ProfileData touching every section, for round-trip tests.
ProfileData sampleProfileData() {
  ProfileData D;
  D.Workload = "jess";
  D.SavedAtCycle = 123456789;
  D.HasThresholds = true;
  D.DecayFactor = 0.95;
  D.HotMethodSamples = 8;
  D.HotTraceThreshold = 2.5;
  D.MinRuleWeight = 1.0;
  D.DcgTraces.push_back({7.25, {{"HashMap.get", 4}}, "MyKey.hashCode"});
  D.DcgTraces.push_back(
      {3.5, {{"HashMap.get", 4}, {"Main.runTest", 9}}, "Obj.hashCode"});
  D.Decisions.push_back({5.0, {{"Main.runTest", 9}}, "HashMap.get"});
  D.HotMethods.push_back({42.125, "Main.runTest"});
  D.HotMethods.push_back({7.0, "HashMap.get"});
  D.Refusals.push_back({"Main.runTest", "HashMap.get", 4, "Huge.blob"});
  return D;
}

} // namespace

TEST(ProfileIoTest, V2RoundTripIsBitExact) {
  const ProfileData D = sampleProfileData();
  const std::string Text = serializeProfileData(D);
  ProfileData Back;
  std::string Error;
  ASSERT_TRUE(parseProfile(Text, Back, Error)) << Error;
  EXPECT_TRUE(Back.Warnings.empty());
  EXPECT_EQ(Back.Version, ProfileFormatVersion);
  EXPECT_EQ(Back.Workload, "jess");
  EXPECT_EQ(Back.SavedAtCycle, 123456789u);
  EXPECT_TRUE(Back.HasThresholds);
  EXPECT_DOUBLE_EQ(Back.DecayFactor, 0.95);
  EXPECT_EQ(Back.DcgTraces.size(), 2u);
  EXPECT_EQ(Back.Decisions.size(), 1u);
  EXPECT_EQ(Back.HotMethods.size(), 2u);
  ASSERT_EQ(Back.Refusals.size(), 1u);
  EXPECT_EQ(Back.Refusals[0].Compiled, "Main.runTest");
  EXPECT_EQ(Back.Refusals[0].Site, 4u);
  // The determinism contract: parse-then-serialize is the identity.
  EXPECT_EQ(serializeProfileData(Back), Text);
}

TEST(ProfileIoTest, V2SerializationIsOrderIndependent) {
  ProfileData A = sampleProfileData();
  ProfileData B = sampleProfileData();
  std::reverse(B.DcgTraces.begin(), B.DcgTraces.end());
  std::reverse(B.HotMethods.begin(), B.HotMethods.end());
  EXPECT_EQ(serializeProfileData(A), serializeProfileData(B));
}

TEST(ProfileIoTest, V2RejectsMissingOrMalformedHeader) {
  ProfileData D;
  std::string Error;
  EXPECT_FALSE(parseProfile("", D, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
  EXPECT_NE(Error.find("AOCI-PROFILE"), std::string::npos) << Error;
  EXPECT_FALSE(parseProfile("[dcg]\n1.0 a:1 => b\n", D, Error));
  EXPECT_NE(Error.find("header"), std::string::npos) << Error;
  EXPECT_FALSE(parseProfile("AOCI-PROFILE\n", D, Error));
  EXPECT_FALSE(parseProfile("PROFILE v2\n", D, Error));
}

TEST(ProfileIoTest, V2RejectsUnsupportedVersions) {
  ProfileData D;
  std::string Error;
  for (const char *Header : {"AOCI-PROFILE v1\n", "AOCI-PROFILE v3\n",
                             "AOCI-PROFILE v99\n[dcg]\n"}) {
    EXPECT_FALSE(parseProfile(Header, D, Error)) << Header;
    EXPECT_NE(Error.find("unsupported profile version"), std::string::npos)
        << Error;
    EXPECT_NE(Error.find("v2"), std::string::npos)
        << "error must say which version this build reads: " << Error;
  }
}

TEST(ProfileIoTest, V2SkipsUnknownSectionsWithAWarning) {
  const std::string Text = "AOCI-PROFILE v2\n"
                           "[meta]\n"
                           "saved-at-cycle 7\n"
                           "[future-telemetry]\n"
                           "anything at all, even :: malformed ## lines\n"
                           "[hot-methods]\n"
                           "3.000000 Main.runTest\n";
  ProfileData D;
  std::string Error;
  ASSERT_TRUE(parseProfile(Text, D, Error)) << Error;
  ASSERT_EQ(D.Warnings.size(), 1u);
  EXPECT_NE(D.Warnings[0].find("future-telemetry"), std::string::npos);
  EXPECT_NE(D.Warnings[0].find("line 4"), std::string::npos);
  ASSERT_EQ(D.HotMethods.size(), 1u)
      << "parsing resumes after the unknown section";
  EXPECT_EQ(D.HotMethods[0].Method, "Main.runTest");
}

TEST(ProfileIoTest, V2SkipsUnknownKeysWithAWarning) {
  const std::string Text = "AOCI-PROFILE v2\n"
                           "[meta]\n"
                           "saved-at-cycle 7\n"
                           "saved-by aoci-9.99\n"
                           "[thresholds]\n"
                           "decay-factor 0.950000\n"
                           "frobnication-level 11\n";
  ProfileData D;
  std::string Error;
  ASSERT_TRUE(parseProfile(Text, D, Error)) << Error;
  ASSERT_EQ(D.Warnings.size(), 2u);
  EXPECT_NE(D.Warnings[0].find("saved-by"), std::string::npos);
  EXPECT_NE(D.Warnings[1].find("frobnication-level"), std::string::npos);
  EXPECT_DOUBLE_EQ(D.DecayFactor, 0.95);
}

TEST(ProfileIoTest, V2DiagnosticsNameLineSectionAndToken) {
  ProfileData D;
  std::string Error;
  // Malformed weight inside [dcg].
  EXPECT_FALSE(parseProfile(
      "AOCI-PROFILE v2\n[dcg]\nheavy HashMap.get:4 => MyKey.hashCode\n", D,
      Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_NE(Error.find("[dcg]"), std::string::npos) << Error;
  EXPECT_NE(Error.find("'heavy'"), std::string::npos) << Error;
  // Bad site index in a context pair, inside [decisions].
  EXPECT_FALSE(parseProfile(
      "AOCI-PROFILE v2\n[decisions]\n1.0 HashMap.get:x => MyKey.hashCode\n",
      D, Error));
  EXPECT_NE(Error.find("[decisions]"), std::string::npos) << Error;
  EXPECT_NE(Error.find("'HashMap.get:x'"), std::string::npos) << Error;
  // Truncated refusal (missing callee).
  EXPECT_FALSE(parseProfile(
      "AOCI-PROFILE v2\n[refusals]\nMain.runTest HashMap.get:4 =>\n", D,
      Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_NE(Error.find("[refusals]"), std::string::npos) << Error;
  // Trailing junk after a refusal.
  EXPECT_FALSE(parseProfile("AOCI-PROFILE v2\n[refusals]\n"
                            "Main.runTest HashMap.get:4 => Huge.blob extra\n",
                            D, Error));
  EXPECT_NE(Error.find("'extra'"), std::string::npos) << Error;
  // Content before any section header.
  EXPECT_FALSE(parseProfile("AOCI-PROFILE v2\n1.0 a:1 => b\n", D, Error));
  EXPECT_NE(Error.find("expected section header"), std::string::npos) << Error;
  // Negative sample count in [hot-methods].
  EXPECT_FALSE(parseProfile(
      "AOCI-PROFILE v2\n[hot-methods]\n-3.0 Main.runTest\n", D, Error));
  EXPECT_NE(Error.find("'-3.0'"), std::string::npos) << Error;
}

TEST(ProfileIoTest, V2ToleratesCommentsBlanksAndCrlf) {
  const std::string Text = "# training profile, reviewed by hand\r\n"
                           "AOCI-PROFILE v2\r\n"
                           "\r\n"
                           "[meta]\r\n"
                           "saved-at-cycle 99\r\n"
                           "# a comment inside a section\r\n"
                           "[hot-methods]\r\n"
                           "1.500000 Main.runTest\r\n";
  ProfileData D;
  std::string Error;
  ASSERT_TRUE(parseProfile(Text, D, Error)) << Error;
  EXPECT_TRUE(D.Warnings.empty());
  EXPECT_EQ(D.SavedAtCycle, 99u);
  ASSERT_EQ(D.HotMethods.size(), 1u);
  EXPECT_DOUBLE_EQ(D.HotMethods[0].Samples, 1.5);
}

TEST(ProfileIoTest, V2GoldenProfileRoundTripsBitExactly) {
  // The checked-in fixture is the normative worked example of
  // docs/profile-format.md. Two invariants: serializing the canonical
  // ProfileData reproduces the fixture byte-for-byte, and parsing the
  // fixture then re-serializing is the identity (so the on-disk format
  // cannot drift without this test noticing).
  const std::string Path = std::string(AOCI_GOLDEN_DIR) + "/profile_v2.golden";
  const std::string Text = serializeProfileData(sampleProfileData());
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Text;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Text)
      << "v2 profile bytes drifted from the checked-in fixture";
  ProfileData Back;
  std::string Error;
  ASSERT_TRUE(parseProfile(Buffer.str(), Back, Error)) << Error;
  EXPECT_EQ(serializeProfileData(Back), Buffer.str());
}
