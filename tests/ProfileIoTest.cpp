//===- tests/ProfileIoTest.cpp - Profile persistence tests ------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "core/AdaptiveSystem.h"
#include "profile/ProfileIo.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

Trace makeTrace(std::vector<ContextPair> Ctx, MethodId Callee) {
  Trace T;
  T.Context = std::move(Ctx);
  T.Callee = Callee;
  return T;
}

} // namespace

TEST(ProfileIoTest, RoundTripPreservesWeightsAndTraces) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode), 3.5);
  Dcg.addSample(
      makeTrace({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
                F.ObjHashCode),
      7.25);

  std::string Text = serializeProfile(F.P, Dcg);
  DynamicCallGraph Back;
  std::string Error;
  ASSERT_TRUE(deserializeProfile(F.P, Text, Back, Error)) << Error;
  EXPECT_EQ(Back.numTraces(), 2u);
  EXPECT_DOUBLE_EQ(
      Back.weight(makeTrace({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode)),
      3.5);
  EXPECT_DOUBLE_EQ(
      Back.weight(makeTrace(
          {{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
          F.ObjHashCode)),
      7.25);
}

TEST(ProfileIoTest, SerializationIsDeterministic) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph A, B;
  // Insert in different orders; output must match.
  A.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  A.addSample(makeTrace({{F.Get, 2}}, F.ObjHashCode), 2);
  B.addSample(makeTrace({{F.Get, 2}}, F.ObjHashCode), 2);
  B.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  EXPECT_EQ(serializeProfile(F.P, A), serializeProfile(F.P, B));
}

TEST(ProfileIoTest, RejectsMalformedInput) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  std::string Error;
  EXPECT_FALSE(deserializeProfile(F.P, "notaweight a:1 => b\n", Dcg, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(deserializeProfile(
      F.P, "1.0 Unknown.method:3 => MyKey.hashCode\n", Dcg, Error));
  EXPECT_NE(Error.find("unknown method"), std::string::npos);
  EXPECT_FALSE(deserializeProfile(
      F.P, "1.0 HashMap.get:4\n", Dcg, Error)); // No callee.
  EXPECT_FALSE(deserializeProfile(F.P, "-2 HashMap.get:4 => MyKey.hashCode\n",
                                  Dcg, Error));
  EXPECT_EQ(Dcg.numTraces(), 0u) << "failed parses leave the DCG empty";
}

TEST(ProfileIoTest, EmptyTextYieldsEmptyProfile) {
  FigureOneProgram F = makeFigureOne(1);
  DynamicCallGraph Dcg;
  Dcg.addSample(makeTrace({{F.Get, 1}}, F.MyKeyHashCode), 1);
  std::string Error;
  EXPECT_TRUE(deserializeProfile(F.P, "", Dcg, Error));
  EXPECT_EQ(Dcg.numTraces(), 0u);
}

TEST(ProfileIoTest, LiveProfileRoundTripsThroughText) {
  // Collect a real profile online, serialize, reload into a fresh run.
  FigureOneProgram F = makeFigureOne(200000);
  std::string Text;
  {
    VirtualMachine VM(F.P);
    auto Policy = makePolicy(PolicyKind::Fixed, 2);
    AdaptiveSystem Aos(VM, *Policy);
    Aos.attach();
    VM.addThread(F.P.entryMethod());
    VM.run();
    Text = serializeProfile(F.P, Aos.dcg());
    EXPECT_GT(Aos.dcg().numTraces(), 0u);
  }

  FigureOneProgram F2 = makeFigureOne(200000);
  DynamicCallGraph Training;
  std::string Error;
  ASSERT_TRUE(deserializeProfile(F2.P, Text, Training, Error)) << Error;
  EXPECT_GT(Training.numTraces(), 0u);

  VirtualMachine VM(F2.P);
  auto Policy = makePolicy(PolicyKind::Fixed, 2);
  AdaptiveSystem Aos(VM, *Policy);
  Aos.seedProfile(Training);
  EXPECT_FALSE(Aos.rules().empty())
      << "seeding codifies rules before execution starts";
  Aos.attach();
  unsigned T = VM.addThread(F2.P.entryMethod());
  VM.run();
  EXPECT_EQ(VM.threads()[T]->Result.asInt(), 3 * 200000);
}

TEST(ProfileIoTest, SeededRunSkipsTheWarmUp) {
  struct Outcome {
    uint64_t Fallbacks;
    uint64_t CompileCycles;
    uint64_t Compilations;
  };
  auto runWithSeed = [](bool Seed) {
    FigureOneProgram Train = makeFigureOne(300000);
    std::string Text;
    {
      VirtualMachine VM(Train.P);
      auto Policy = makePolicy(PolicyKind::Fixed, 2);
      AdaptiveSystem Aos(VM, *Policy);
      Aos.attach();
      VM.addThread(Train.P.entryMethod());
      VM.run();
      Text = serializeProfile(Train.P, Aos.dcg());
    }
    FigureOneProgram Prod = makeFigureOne(300000);
    VirtualMachine VM(Prod.P);
    auto Policy = makePolicy(PolicyKind::Fixed, 2);
    AdaptiveSystem Aos(VM, *Policy);
    if (Seed) {
      DynamicCallGraph Training;
      std::string Error;
      EXPECT_TRUE(deserializeProfile(Prod.P, Text, Training, Error));
      Aos.seedProfile(Training);
    }
    Aos.attach();
    VM.addThread(Prod.P.entryMethod());
    VM.run();
    return Outcome{VM.counters().GuardFallbacks,
                   VM.codeManager().optCompileCycles(),
                   Aos.stats().OptCompilations};
  };
  Outcome Seeded = runWithSeed(true);
  Outcome Cold = runWithSeed(false);
  // The offline pipeline's wins: no transient mispredictions while the
  // profile warms up, and fewer/cheaper optimizing compilations. (Wall
  // clock can go either way — an offline profile also freezes decisions
  // the online system would keep refining, which is the flip side the
  // paper's related-work discussion alludes to.)
  EXPECT_LT(Seeded.Fallbacks, Cold.Fallbacks / 2 + 1);
  EXPECT_LE(Seeded.Compilations, Cold.Compilations);
  EXPECT_LE(Seeded.CompileCycles, Cold.CompileCycles);
}
