//===- tests/MutationTest.cpp - Verifier mutation fuzzing -------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Mutation testing of the bytecode verifier: take known-good programs
// (the Figure 1 program and the workload suite), apply random single-
// instruction corruptions, and check that the verifier either rejects
// the mutant or the mutant still runs safely to a bounded cycle limit.
// This is the property the VM relies on: "verifies cleanly" must imply
// "interprets without violating any interpreter invariant".
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "harness/Experiment.h"
#include "support/Audit.h"
#include "support/Rng.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"
#include "workload/Workload.h"
#include "workload/scenario/ScenarioSpec.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

/// Applies one random mutation to a random concrete method body of \p P.
/// Returns false when the draw found nothing to mutate.
bool mutateOnce(Program &P, Rng &R) {
  const MethodId M = static_cast<MethodId>(R.nextBelow(P.numMethods()));
  Method &Meth = P.mutableMethod(M);
  if (Meth.Body.empty())
    return false;
  Instruction &I =
      Meth.Body[R.nextBelow(Meth.Body.size())];
  switch (R.nextBelow(3)) {
  case 0: // Corrupt the opcode.
    I.Op = static_cast<Opcode>(R.nextBelow(NumOpcodes));
    break;
  case 1: // Corrupt the operand.
    I.Operand = R.nextInRange(-4, 1000);
    break;
  default: // Replace wholesale.
    I = Instruction(static_cast<Opcode>(R.nextBelow(NumOpcodes)),
                    R.nextInRange(0, 50));
    break;
  }
  return true;
}

} // namespace

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, VerifierRejectsMostCorruptions) {
  // Random corruption is graded by the verifier only (the verifier
  // checks structure and stack discipline, not value types, so accepted
  // mutants are not necessarily type-safe to execute).
  Rng R(GetParam());
  unsigned Rejected = 0, Accepted = 0;
  for (int Case = 0; Case != 80; ++Case) {
    FigureOneProgram F = makeFigureOne(50);
    Program P = std::move(F.P);
    if (!mutateOnce(P, R))
      continue;
    if (verifyProgram(P).empty())
      ++Accepted;
    else
      ++Rejected;
  }
  EXPECT_GT(Rejected, 30u) << "verifier rejected suspiciously few mutants";
  EXPECT_GT(Accepted, 0u) << "some single mutations are structurally fine";
}

TEST_P(MutationFuzzTest, TypePreservingMutantsRunSafely) {
  // Mutations that provably preserve semantics-relevant structure (only
  // the magnitude of pure Work instructions changes) must keep the
  // program verifier-clean AND executable to completion with the same
  // result. (Integer constants can be array lengths; binary-operator
  // swaps can flip a loop decrement into an increment — neither is safe
  // to mutate blindly.)
  Rng R(GetParam() ^ 0xFACE);
  // Reference result of the unmutated program (jess carries plenty of
  // Work instructions in its kernel).
  const WorkloadParams Params{5, 0.02};
  int64_t Expected;
  {
    Workload W = makeWorkload("jess", Params);
    VirtualMachine VM(W.Prog);
    unsigned T = VM.addThread(W.Prog.entryMethod());
    VM.run();
    Expected = VM.threads()[T]->Result.asInt();
  }
  for (int Case = 0; Case != 6; ++Case) {
    Workload W = makeWorkload("jess", Params);
    Program P = std::move(W.Prog);
    unsigned Mutated = 0;
    for (MethodId M = 0; M != P.numMethods(); ++M)
      for (Instruction &I : P.mutableMethod(M).Body)
        if (I.Op == Opcode::Work && R.nextBool(0.5)) {
          I.Operand = R.nextInRange(1, 40);
          ++Mutated;
        }
    ASSERT_GT(Mutated, 0u);
    ASSERT_TRUE(verifyProgram(P).empty());
    VirtualMachine VM(P);
    unsigned T = VM.addThread(P.entryMethod());
    VM.run(/*CycleLimit=*/500'000'000);
    ASSERT_TRUE(VM.threads()[T]->Finished);
    EXPECT_EQ(VM.threads()[T]->Result.asInt(), Expected)
        << "Work mutations must not change results";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Values(71, 72, 73, 74));

TEST(MutationTest, ChurnScenarioSurvivesEvictionPlusOsrAudited) {
  // Closes a long-standing coverage gap: nothing here ever exercised
  // eviction and OSR/deopt in the same run. The cache-churn adversary
  // rotates a wide warm set through a small cache while OSR transfers
  // live loops onto (and deopt peels them off) freshly installed
  // variants — evict, deopt, recompile-on-reentry all interleave. The
  // PR 5 audit invariants (code-cache ledger, OSR frame remapping,
  // organizer drains) must hold through the whole interleaving, in
  // Release builds too, so force auditing on as AOCI_AUDIT=1 would.
  const bool WasAudited = audit::enabled();
  audit::setEnabled(true);
  RunConfig Config;
  Config.WorkloadName = "scn-cache-churn";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Config.Params.Scale = 0.5;
  Config.Aos.Osr.Enabled = true;
  Config.Model.CodeCache.CapacityBytes = 6000;

  RunResult R;
  try {
    R = runExperiment(Config);
  } catch (const audit::AuditError &E) {
    audit::setEnabled(WasAudited);
    FAIL() << "audit invariant violated under eviction+OSR churn: "
           << E.what();
  }
  EXPECT_GT(R.Evictions, 0u) << "the churn set must overflow the cache";
  EXPECT_GT(R.RecompilesAfterEvict, 0u)
      << "re-entering an evicted churn method must recompile it";
  EXPECT_GT(R.OsrEntries + R.Deopts, 0u)
      << "OSR/deopt must actually fire alongside eviction";

  // The interleaving is a pure function of the configuration.
  RunResult Again = runExperiment(Config);
  audit::setEnabled(WasAudited);
  EXPECT_EQ(R.WallCycles, Again.WallCycles);
  EXPECT_EQ(R.Evictions, Again.Evictions);
  EXPECT_EQ(R.OsrEntries, Again.OsrEntries);
  EXPECT_EQ(R.Deopts, Again.Deopts);
  EXPECT_EQ(R.ProgramResult, Again.ProgramResult);
}

TEST(MutationTest, EveryWorkloadSurvivesHarmlessWorkMutations) {
  // Scaling Work magnitudes never invalidates a program; the verifier
  // must keep accepting, and the VM must keep terminating.
  Rng R(1234);
  for (const std::string &Name : workloadNames()) {
    Workload W = makeWorkload(Name, WorkloadParams{3, 0.01});
    Program P = std::move(W.Prog);
    unsigned Mutated = 0;
    for (MethodId M = 0; M != P.numMethods() && Mutated < 20; ++M) {
      for (Instruction &I : P.mutableMethod(M).Body) {
        if (I.Op == Opcode::Work && R.nextBool(0.3)) {
          I.Operand = R.nextInRange(1, 80);
          ++Mutated;
        }
      }
    }
    EXPECT_TRUE(verifyProgram(P).empty()) << Name;
    VirtualMachine VM(P);
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run(/*CycleLimit=*/500'000'000);
    SUCCEED();
  }
}
