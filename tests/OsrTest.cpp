//===- tests/OsrTest.cpp - OSR & deoptimization subsystem tests ------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The OSR subsystem's contracts (see DESIGN.md, "On-stack replacement"):
//   (1) frame mapping is the identity on source-level state — a remapped
//       activation resumes at the same PC with bit-identical locals and
//       operand stack, and the program result never changes;
//   (2) OSR off is byte-identical to the pre-subsystem VM — no driver, no
//       staleness checks, no charges;
//   (3) deoptimization unwinds a whole stale inline group onto baseline
//       variants and composes with OSR entry at later backedges;
//   (4) OSR trace events cost zero simulated cycles, and a parallel grid
//       sweep with OSR on exports the same CSV bytes as a serial one.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "harness/CsvExport.h"
#include "harness/Experiment.h"
#include "osr/FrameMap.h"
#include "osr/OsrManager.h"
#include "trace/TraceJson.h"
#include "trace/TraceSink.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace aoci;

namespace {

//===----------------------------------------------------------------------===//
// Hand-built programs
//===----------------------------------------------------------------------===//

/// Builds: main() { s = 0; i = N; while (i != 0) { s += i; i--; } return s; }
/// The loop closes with an unconditional backward jump, so the backedge
/// itself never touches the operand stack.
Program loopProgram(int64_t N) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(N).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.load(1).load(0).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

/// A three-level call chain under a driver loop:
///   main()   { t = 0; repeat Calls: t += outer(Iters); return t; }
///   outer(n) { return mid(n) + 1; }
///   mid(n)   { return inner(n) + 1; }
///   inner(n) { s = 0; while (n != 0) { s += n; n--; } return s; }
/// inner's loop closes with an unconditional jump (a value-neutral
/// backedge), and the recorded call-site indices let tests hand-build an
/// outer variant that inlines mid and, inside it, inner.
struct DeepProgram {
  Program P;
  MethodId Main = InvalidMethodId;
  MethodId Outer = InvalidMethodId;
  MethodId Mid = InvalidMethodId;
  MethodId Inner = InvalidMethodId;
  BytecodeIndex OuterCallsMid = 0;
  BytecodeIndex MidCallsInner = 0;
};

DeepProgram deepProgram(int64_t Calls, int64_t Iters) {
  DeepProgram D;
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  D.Inner = B.declareMethod(C, "inner", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Inner);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.load(1).load(0).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  D.Mid = B.declareMethod(C, "mid", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Mid);
    E.load(0);
    D.MidCallsInner = E.nextIndex();
    E.invokeStatic(D.Inner);
    E.iconst(1).iadd().vreturn();
    E.finish();
  }
  D.Outer = B.declareMethod(C, "outer", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(D.Outer);
    E.load(0);
    D.OuterCallsMid = E.nextIndex();
    E.invokeStatic(D.Mid);
    E.iconst(1).iadd().vreturn();
    E.finish();
  }
  D.Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(D.Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(Calls).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.iconst(Iters).invokeStatic(D.Outer);
    E.load(1).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(D.Main);
  D.P = B.build();
  return D;
}

int64_t deepProgramResult(int64_t Calls, int64_t Iters) {
  return Calls * (Iters * (Iters + 1) / 2 + 2);
}

/// An optimized variant of some method with no inline plan.
std::unique_ptr<CodeVariant> planlessVariant(const Program &P, MethodId M,
                                             OptLevel Level) {
  auto V = std::make_unique<CodeVariant>();
  V->M = M;
  V->Level = Level;
  V->MachineUnits = P.method(M).machineSize();
  return V;
}

/// An optimized outer variant that inlines mid and, nested inside it,
/// inner — the deepest inline group the deep program can form.
std::unique_ptr<CodeVariant> plannedOuter(const DeepProgram &D,
                                          OptLevel Level) {
  InlineCase InnerCase;
  InnerCase.Callee = D.Inner;
  InnerCase.BodyUnits = D.P.method(D.Inner).machineSize();
  InlineCase MidCase;
  MidCase.Callee = D.Mid;
  MidCase.BodyUnits = D.P.method(D.Mid).machineSize();
  MidCase.Body = std::make_unique<InlineNode>();
  MidCase.Body->getOrCreate(D.MidCallsInner)
      .Cases.push_back(std::move(InnerCase));
  InlinePlan Plan;
  Plan.Root.getOrCreate(D.OuterCallsMid).Cases.push_back(std::move(MidCase));
  Plan.recountStatistics();
  Plan.TotalUnits = D.P.method(D.Outer).machineSize() +
                    D.P.method(D.Mid).machineSize() +
                    D.P.method(D.Inner).machineSize();
  auto V = planlessVariant(D.P, D.Outer, Level);
  V->MachineUnits = Plan.TotalUnits;
  V->Plan = std::move(Plan);
  return V;
}

/// Steps \p T one instruction at a time until \p Done, with a hard bound
/// so a broken condition fails the test instead of hanging it.
template <typename Pred>
void stepUntil(VirtualMachine &VM, ThreadState &T, Pred Done) {
  for (uint64_t I = 0; I != 10000000; ++I) {
    if (Done())
      return;
    ASSERT_FALSE(T.Finished) << "thread finished before the condition held";
    VM.step(T, 1);
  }
  FAIL() << "condition never held";
}

/// Locals and operand stack of \p S match frame \p Index bit for bit. The
/// PC is deliberately not compared: transitions happen at a backedge, so
/// the frame has already branched relative to a pre-step snapshot.
void expectSameValues(const FrameSnapshot &S, const ThreadState &T,
                      size_t Index) {
  FrameSnapshot Now = snapshotFrame(T, Index);
  EXPECT_EQ(S.Method, Now.Method);
  ASSERT_EQ(S.Locals.size(), Now.Locals.size());
  for (size_t I = 0; I != S.Locals.size(); ++I)
    EXPECT_TRUE(S.Locals[I].equals(Now.Locals[I])) << "local " << I;
  ASSERT_EQ(S.Stack.size(), Now.Stack.size());
  for (size_t I = 0; I != S.Stack.size(); ++I)
    EXPECT_TRUE(S.Stack[I].equals(Now.Stack[I])) << "stack slot " << I;
}

//===----------------------------------------------------------------------===//
// (1) Frame mapping is the identity on source-level state.
//===----------------------------------------------------------------------===//

TEST(OsrFrameMapTest, SnapshotRoundTripAcrossRetarget) {
  const int64_t N = 500;
  Program Reference = loopProgram(N);
  VirtualMachine RefVm(Reference);
  RefVm.addThread(Reference.entryMethod());
  RefVm.run();
  const int64_t Expected = RefVm.threads()[0]->Result.asInt();
  ASSERT_EQ(Expected, N * (N + 1) / 2);

  // The property, at several suspension points: snapshot, retarget the
  // frame onto a freshly installed Opt2 variant, and the frame still
  // carries exactly the snapshotted state and completes with the
  // reference result.
  for (uint64_t Steps : {7u, 41u, 150u, 1009u, 2222u}) {
    Program P = loopProgram(N);
    VirtualMachine VM(P);
    VM.addThread(P.entryMethod());
    ThreadState &T = *VM.threads()[0];
    VM.step(T, Steps);
    ASSERT_FALSE(T.Finished) << "suspension point must be mid-run";

    const size_t Index = T.Frames.size() - 1;
    const MethodId M = T.Frames[Index].Method;
    FrameSnapshot Before = snapshotFrame(T, Index);
    ASSERT_TRUE(snapshotMatchesFrame(Before, T, Index));

    const CodeVariant *To =
        VM.codeManager().install(planlessVariant(P, M, OptLevel::Opt2));
    retargetFrame(VM, T, Index, To, /*Plan=*/nullptr, /*Inlined=*/false);

    EXPECT_EQ(T.Frames[Index].Variant, To) << Steps << " steps";
    EXPECT_FALSE(T.Frames[Index].Inlined);
    EXPECT_TRUE(snapshotMatchesFrame(Before, T, Index))
        << "retarget must not move PC, locals or stack (" << Steps
        << " steps)";

    VM.run();
    EXPECT_EQ(T.Result.asInt(), Expected) << Steps << " steps";
    EXPECT_EQ(T.SlabTop, 0u);
  }
}

TEST(OsrFrameMapTest, PhysicalRootIndexWalksTheInlineGroup) {
  DeepProgram D = deepProgram(/*Calls=*/2, /*Iters=*/50);
  VirtualMachine VM(D.P);
  VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T, [&] { return T.Frames.size() == 4; });

  // main / outer(physical, planned) / mid(inlined) / inner(inlined).
  EXPECT_EQ(T.Frames[0].Method, D.Main);
  EXPECT_EQ(T.Frames[1].Method, D.Outer);
  EXPECT_FALSE(T.Frames[1].Inlined);
  EXPECT_EQ(T.Frames[2].Method, D.Mid);
  EXPECT_TRUE(T.Frames[2].Inlined);
  EXPECT_EQ(T.Frames[3].Method, D.Inner);
  EXPECT_TRUE(T.Frames[3].Inlined);

  EXPECT_EQ(physicalRootIndex(T, 3), 1u);
  EXPECT_EQ(physicalRootIndex(T, 2), 1u);
  EXPECT_EQ(physicalRootIndex(T, 1), 1u);
  EXPECT_EQ(physicalRootIndex(T, 0), 0u);
}

//===----------------------------------------------------------------------===//
// OSR entry at a backedge.
//===----------------------------------------------------------------------===//

TEST(OsrEnterTest, TransfersLoopingActivationAtBackedge) {
  const int64_t N = 2000;
  Program P = loopProgram(N);
  VirtualMachine VM(P);
  OsrManager Mgr;
  VM.setOsrDriver(&Mgr);
  VM.addThread(P.entryMethod());
  ThreadState &T = *VM.threads()[0];

  // Run into the loop, then supersede the executing variant. Jikes'
  // install semantics alone would leave this activation in old code for
  // the whole run; the driver must transfer it at the next backedge.
  VM.step(T, 200);
  ASSERT_FALSE(T.Finished);
  const CodeVariant *To = VM.codeManager().install(
      planlessVariant(P, T.Frames.back().Method, OptLevel::Opt2));
  VM.run();

  EXPECT_EQ(Mgr.stats().OsrEntries, 1u);
  EXPECT_EQ(Mgr.stats().Deopts, 0u);
  EXPECT_EQ(Mgr.stats().TransitionCyclesCharged,
            VM.costModel().OsrTransitionCycles);
  // The activation returned out of the replacement code, closing the
  // recovery segment.
  EXPECT_EQ(Mgr.stats().OsrExits, 1u);
  EXPECT_GT(Mgr.stats().CyclesRecoveredEstimate, 0u);
  EXPECT_EQ(T.Result.asInt(), N * (N + 1) / 2);
  EXPECT_EQ(T.SlabTop, 0u);
  (void)To;
}

TEST(OsrEnterTest, PolicyVetoLeavesExecutionUntouched) {
  const int64_t N = 2000;
  auto runOnce = [&](OsrManager *Mgr) {
    Program P = loopProgram(N);
    VirtualMachine VM(P);
    if (Mgr != nullptr)
      VM.setOsrDriver(Mgr);
    VM.addThread(P.entryMethod());
    ThreadState &T = *VM.threads()[0];
    VM.step(T, 200);
    VM.codeManager().install(
        planlessVariant(P, T.Frames.back().Method, OptLevel::Opt2));
    VM.run();
    EXPECT_EQ(T.Result.asInt(), N * (N + 1) / 2);
    return VM.cycles();
  };

  OsrManager Veto;
  Veto.setPolicy([](MethodId, const CodeVariant &, const CodeVariant &,
                    uint64_t, double *) { return false; });
  const uint64_t WithVeto = runOnce(&Veto);
  const uint64_t WithoutDriver = runOnce(nullptr);

  // A vetoing driver is indistinguishable from no driver: same clock,
  // nothing counted.
  EXPECT_EQ(WithVeto, WithoutDriver);
  EXPECT_EQ(Veto.stats().OsrEntries, 0u);
  EXPECT_EQ(Veto.stats().Deopts, 0u);
  EXPECT_EQ(Veto.stats().TransitionCyclesCharged, 0u);
}

//===----------------------------------------------------------------------===//
// (3) Deoptimization of a deep inline group, composing with OSR entry.
//===----------------------------------------------------------------------===//

TEST(OsrDeoptTest, DeoptUnderDeepInliningPreservesFrameState) {
  const int64_t Calls = 3, Iters = 300;
  DeepProgram D = deepProgram(Calls, Iters);
  VirtualMachine VM(D.P);
  OsrManager Mgr;
  VM.setOsrDriver(&Mgr);
  // Installed before any call, so mid and inner are only ever entered
  // inlined: no baseline variants exist and deopt must materialize them.
  VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T, [&] { return T.Frames.size() == 4; });
  ASSERT_EQ(VM.codeManager().baseline(D.Mid), nullptr);
  ASSERT_EQ(VM.codeManager().baseline(D.Inner), nullptr);

  // Supersede the physical variant under the live inline group, then run
  // to the deopt, snapshotting every frame before each step so the
  // transition's input state is in hand.
  VM.codeManager().install(planlessVariant(D.P, D.Outer, OptLevel::Opt2));
  std::vector<FrameSnapshot> Snaps;
  for (uint64_t I = 0; Mgr.stats().Deopts == 0; ++I) {
    ASSERT_LT(I, 100000u) << "deopt never fired";
    ASSERT_FALSE(T.Finished);
    Snaps.clear();
    for (size_t F = 0; F != T.Frames.size(); ++F)
      Snaps.push_back(snapshotFrame(T, F));
    VM.step(T, 1);
  }

  EXPECT_EQ(Mgr.stats().Deopts, 1u);
  EXPECT_EQ(Mgr.stats().DeoptFramesRemapped, 3u);
  ASSERT_EQ(T.Frames.size(), 4u);
  ASSERT_EQ(Snaps.size(), 4u);

  // Every frame of the group is physical now; mid and inner picked up
  // freshly materialized baselines, while outer (never baseline-compiled)
  // fell through to its current variant.
  const CodeVariant *MidBase = VM.codeManager().baseline(D.Mid);
  const CodeVariant *InnerBase = VM.codeManager().baseline(D.Inner);
  ASSERT_NE(MidBase, nullptr) << "deopt materializes missing baselines";
  ASSERT_NE(InnerBase, nullptr);
  EXPECT_FALSE(T.Frames[1].Inlined);
  EXPECT_FALSE(T.Frames[2].Inlined);
  EXPECT_FALSE(T.Frames[3].Inlined);
  EXPECT_EQ(T.Frames[1].Variant, VM.codeManager().current(D.Outer));
  EXPECT_EQ(T.Frames[2].Variant, MidBase);
  EXPECT_EQ(T.Frames[3].Variant, InnerBase);

  // The mapping was the identity on values: locals and stacks of all four
  // frames are bit-identical to the pre-backedge snapshots.
  for (size_t F = 0; F != 4; ++F)
    expectSameValues(Snaps[F], T, F);

  VM.run();
  EXPECT_EQ(T.Result.asInt(), deepProgramResult(Calls, Iters));
  EXPECT_EQ(T.SlabTop, 0u);
}

TEST(OsrDeoptTest, DeoptComposesWithOsrEntry) {
  const int64_t Calls = 3, Iters = 300;
  DeepProgram D = deepProgram(Calls, Iters);
  VirtualMachine VM(D.P);
  OsrManager Mgr;
  VM.setOsrDriver(&Mgr);
  VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T, [&] { return T.Frames.size() == 4; });

  VM.codeManager().install(planlessVariant(D.P, D.Outer, OptLevel::Opt2));
  stepUntil(VM, T, [&] { return Mgr.stats().Deopts == 1; });

  // The deoptimized inner activation now runs baseline code mid-loop;
  // installing an optimized inner variant must pull it forward through an
  // ordinary OSR entry at one of its remaining backedges — the detour the
  // deopt policy priced in.
  VM.codeManager().install(planlessVariant(D.P, D.Inner, OptLevel::Opt1));
  VM.run();

  EXPECT_EQ(Mgr.stats().Deopts, 1u);
  EXPECT_EQ(Mgr.stats().OsrEntries, 1u);
  EXPECT_EQ(Mgr.stats().OsrExits, 1u);
  EXPECT_EQ(T.Result.asInt(), deepProgramResult(Calls, Iters));
  EXPECT_EQ(T.SlabTop, 0u);
}

//===----------------------------------------------------------------------===//
// (2) OSR off is byte-identical; on, it must actually pay off somewhere.
//===----------------------------------------------------------------------===//

void expectIdenticalResults(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.OptBytesGenerated, B.OptBytesGenerated);
  EXPECT_EQ(A.OptBytesResident, B.OptBytesResident);
  EXPECT_EQ(A.OptCompileCycles, B.OptCompileCycles);
  EXPECT_EQ(A.BaselineCompileCycles, B.BaselineCompileCycles);
  for (unsigned C = 0; C != NumAosComponents; ++C)
    EXPECT_EQ(A.ComponentCycles[C], B.ComponentCycles[C]) << "component " << C;
  EXPECT_EQ(A.GcCycles, B.GcCycles);
  EXPECT_EQ(A.OptCompilations, B.OptCompilations);
  EXPECT_EQ(A.GuardTests, B.GuardTests);
  EXPECT_EQ(A.GuardFallbacks, B.GuardFallbacks);
  EXPECT_EQ(A.InlinedCalls, B.InlinedCalls);
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken);
  EXPECT_EQ(A.ProgramResult, B.ProgramResult);
  EXPECT_EQ(A.OsrEntries, B.OsrEntries);
  EXPECT_EQ(A.Deopts, B.Deopts);
  EXPECT_EQ(A.OsrTransitionCycles, B.OsrTransitionCycles);
}

TEST(OsrExperimentTest, OsrOffIsByteIdenticalToTheDefault) {
  RunConfig Default;
  Default.WorkloadName = "compress";
  Default.Policy = PolicyKind::Fixed;
  Default.MaxDepth = 2;
  Default.Params.Scale = 0.05;

  RunConfig Off = Default;
  Off.Aos.Osr.Enabled = false; // explicit, same as the default

  RunResult A = runExperiment(Default);
  RunResult B = runExperiment(Off);
  expectIdenticalResults(A, B);
  EXPECT_EQ(A.OsrEntries, 0u);
  EXPECT_EQ(A.Deopts, 0u);
  EXPECT_EQ(A.OsrTransitionCycles, 0u);
  EXPECT_EQ(A.OsrCyclesRecovered, 0u);
}

TEST(OsrExperimentTest, OsrOnImprovesSteadyStateOnMpegaudio) {
  RunConfig Config;
  Config.WorkloadName = "mpegaudio";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;

  RunConfig On = Config;
  On.Aos.Osr.Enabled = true;

  RunResult Off = runExperiment(Config);
  RunResult WithOsr = runExperiment(On);

  EXPECT_GT(WithOsr.OsrEntries, 0u) << "the hot loop must transfer";
  EXPECT_GT(WithOsr.OsrTransitionCycles, 0u);
  // Transferring the long-running activation instead of letting it finish
  // in stale code shortens time-to-steady-state on this workload.
  EXPECT_LT(WithOsr.WallCycles, Off.WallCycles);
  // The program itself must be oblivious to where its frames execute.
  EXPECT_EQ(WithOsr.ProgramResult, Off.ProgramResult);
}

//===----------------------------------------------------------------------===//
// (4) Zero-cost tracing and grid determinism with OSR on.
//===----------------------------------------------------------------------===//

TEST(OsrTraceTest, TracingAnOsrRunChargesZeroCycles) {
  RunConfig Config;
  Config.WorkloadName = "mpegaudio";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Config.Aos.Osr.Enabled = true;

  RunResult Plain = runExperiment(Config);

  TraceSink Sink;
  Sink.enable();
  RunConfig Traced = Config;
  Traced.Trace = &Sink;
  RunResult WithTrace = runExperiment(Traced);

  expectIdenticalResults(Plain, WithTrace);
  ASSERT_GT(Plain.OsrEntries, 0u);
  uint64_t OsrEvents = 0;
  Sink.forEach([&](const TraceEvent &E) {
    if (E.Kind == TraceEventKind::OsrEnter)
      ++OsrEvents;
  });
  EXPECT_EQ(OsrEvents, Plain.OsrEntries)
      << "one osr-enter event per counted entry";
}

TEST(OsrGridTest, ParallelGridCsvMatchesSerialWithOsrOn) {
  GridConfig Config;
  Config.Workloads = {"compress", "mpegaudio"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {2, 3};
  Config.Aos.Osr.Enabled = true;

  GridResults Serial = runGrid(Config);
  GridResults Parallel = runGridParallel(Config, 4);

  const std::string SerialCsv =
      exportCsv(Serial, Config.Policies, Config.Depths);
  const std::string ParallelCsv =
      exportCsv(Parallel, Config.Policies, Config.Depths);
  EXPECT_EQ(SerialCsv, ParallelCsv)
      << "OSR transfers must be deterministic across job counts";

  // The sweep must actually exercise OSR, and the per-run activity (kept
  // out of the frozen CSV, reported via metrics) must agree too.
  auto totalEntries = [](const GridResults &R) {
    uint64_t Total = 0;
    for (const RunMetrics &M : R.metrics())
      Total += M.OsrEntries;
    return Total;
  };
  EXPECT_GT(totalEntries(Serial), 0u);
  EXPECT_EQ(totalEntries(Serial), totalEntries(Parallel));
}

//===----------------------------------------------------------------------===//
// Golden trace: the OSR event stream's exported bytes are pinned.
//===----------------------------------------------------------------------===//

/// Same update-or-compare protocol as TraceTest / FingerprintTest:
/// AOCI_UPDATE_GOLDEN=1 rewrites the fixture instead of comparing.
void expectMatchesGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = std::string(AOCI_GOLDEN_DIR) + "/" + Name;
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream OutFile(Path, std::ios::binary);
    ASSERT_TRUE(OutFile) << "cannot write " << Path;
    OutFile << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "OSR trace export drifted from " << Path
      << "; either the transition sequence or the JSON serialization "
         "changed. If intentional, rerun with AOCI_UPDATE_GOLDEN=1, "
         "review the fixture diff, and update OBSERVABILITY.md if the "
         "schema moved";
}

TEST(OsrGoldenTest, DeoptAndOsrTraceJsonMatchesGolden) {
  // A fully hand-driven scenario (the stock workloads never deopt): a
  // deep inline group is deoptimized, the freed inner activation then
  // OSR-enters an optimized variant, and its return closes the segment —
  // one deopt, one osr-enter, one osr-exit, in that order.
  uint32_t Mask = 0;
  std::string Error;
  ASSERT_TRUE(parseTraceFilter("osr-enter,osr-exit,deopt", Mask, Error))
      << Error;
  TraceSink Sink;
  Sink.enable(Mask);

  DeepProgram D = deepProgram(/*Calls=*/2, /*Iters=*/50);
  VirtualMachine VM(D.P);
  VM.setTraceSink(&Sink);
  OsrManager Mgr;
  VM.setOsrDriver(&Mgr);
  VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];
  stepUntil(VM, T, [&] { return T.Frames.size() == 4; });
  VM.codeManager().install(planlessVariant(D.P, D.Outer, OptLevel::Opt2));
  stepUntil(VM, T, [&] { return Mgr.stats().Deopts == 1; });
  VM.codeManager().install(planlessVariant(D.P, D.Inner, OptLevel::Opt1));
  VM.run();
  ASSERT_EQ(T.Result.asInt(), deepProgramResult(2, 50));
  ASSERT_EQ(Mgr.stats().OsrEntries, 1u);
  ASSERT_EQ(Mgr.stats().OsrExits, 1u);

  std::ostringstream Json;
  writeChromeTrace(Json, Sink, "osr/deopt-compose");
  expectMatchesGolden("trace_osr_deopt.golden", Json.str());
}

//===----------------------------------------------------------------------===//
// Stress: repeated install churn over a live stack.
//===----------------------------------------------------------------------===//

TEST(OsrDeoptStressTest, AlternatingInstallChurnKeepsStateConsistent) {
  const int64_t Calls = 40, Iters = 120;
  DeepProgram D = deepProgram(Calls, Iters);
  VirtualMachine VM(D.P);
  OsrManager Mgr;
  // Transfer at every opportunity: maximal churn, not cost/benefit.
  Mgr.setPolicy([](MethodId, const CodeVariant &, const CodeVariant &,
                   uint64_t, double *) { return true; });
  VM.setOsrDriver(&Mgr);
  VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
  VM.addThread(D.P.entryMethod());
  ThreadState &T = *VM.threads()[0];

  // Every 400 instructions, supersede either outer (alternating a planned
  // and a planless variant, so live groups repeatedly deoptimize and
  // reform) or inner (so deoptimized activations repeatedly OSR-enter).
  for (uint64_t K = 0; !T.Finished; ++K) {
    ASSERT_LT(K, 100000u) << "churn loop ran away";
    VM.step(T, 400);
    if (T.Finished)
      break;
    switch (K % 4) {
    case 0:
      VM.codeManager().install(planlessVariant(D.P, D.Outer, OptLevel::Opt2));
      break;
    case 1:
      VM.codeManager().install(planlessVariant(D.P, D.Inner, OptLevel::Opt2));
      break;
    case 2:
      VM.codeManager().install(plannedOuter(D, OptLevel::Opt1));
      break;
    default:
      VM.codeManager().install(planlessVariant(D.P, D.Inner, OptLevel::Opt1));
      break;
    }
  }

  EXPECT_EQ(T.Result.asInt(), deepProgramResult(Calls, Iters));
  EXPECT_EQ(T.SlabTop, 0u) << "every transition must keep the slab balanced";
  EXPECT_GT(Mgr.stats().Deopts, 0u);
  EXPECT_GT(Mgr.stats().OsrEntries, 0u);
  // The inline group is always outer/mid/inner when a deopt fires.
  EXPECT_EQ(Mgr.stats().DeoptFramesRemapped, Mgr.stats().Deopts * 3);
}

} // namespace
