//===- tests/PolicyTest.cpp - Unit tests for src/policy ---------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "bytecode/SizeClass.h"
#include "policy/ContextPolicy.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

/// Builds a program with one method of each "chain property":
///  - ParamVirtual: virtual, 2 params, small
///  - Paramless:    virtual, 0 params, small
///  - StaticM:      static, 1 param, small
///  - LargeM:       virtual, 1 param, large (>= 25x call size)
struct ChainFixture {
  Program P;
  MethodId ParamVirtual, ParamVirtual2, Paramless, StaticM, LargeM;

  ChainFixture() {
    ProgramBuilder B;
    ClassId C = B.addClass("C", InvalidClassId, 1);
    auto makeBody = [&](MethodId M, unsigned WorkUnits) {
      CodeEmitter E = B.code(M);
      E.work(WorkUnits).iconst(1).vreturn();
      E.finish();
    };
    ParamVirtual = B.declareMethod(C, "pv", MethodKind::Virtual, 2, true);
    makeBody(ParamVirtual, 20);
    ParamVirtual2 = B.declareMethod(C, "pv2", MethodKind::Virtual, 1, true);
    makeBody(ParamVirtual2, 20);
    Paramless = B.declareMethod(C, "pl", MethodKind::Virtual, 0, true);
    makeBody(Paramless, 20);
    StaticM = B.declareMethod(C, "st", MethodKind::Static, 1, true);
    makeBody(StaticM, 20);
    LargeM = B.declareMethod(C, "lg", MethodKind::Virtual, 1, true);
    makeBody(LargeM, 25 * CallSequenceSize + 50);
    MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, false);
    {
      CodeEmitter E = B.code(Main);
      E.ret();
      E.finish();
    }
    B.setEntry(Main);
    P = B.build();
    EXPECT_EQ(classifyMethod(P.method(LargeM)), SizeClass::Large);
  }
};

} // namespace

TEST(PolicyTest, ContextInsensitiveIsDepthOne) {
  ChainFixture F;
  ContextInsensitivePolicy Policy;
  EXPECT_EQ(Policy.maxDepth(), 1u);
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2, F.StaticM,
                                 F.ParamVirtual};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 1u);
  EXPECT_EQ(Policy.name(), "cins");
}

TEST(PolicyTest, FixedPolicyUsesFullDepth) {
  ChainFixture F;
  FixedPolicy Policy(3);
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 3u);
  // Shallow stacks clamp to what is available.
  std::vector<MethodId> Short = {F.ParamVirtual, F.ParamVirtual2};
  EXPECT_EQ(Policy.traceDepth(F.P, Short, 0), 1u);
}

TEST(PolicyTest, ParameterlessStopsAtCallee) {
  ChainFixture F;
  ParameterlessPolicy Policy(5);
  // Callee itself parameterless -> depth 1 ("immediately parameterless").
  std::vector<MethodId> Chain = {F.Paramless, F.ParamVirtual,
                                 F.ParamVirtual2, F.ParamVirtual,
                                 F.ParamVirtual2, F.ParamVirtual};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 1u);
}

TEST(PolicyTest, ParameterlessStopsMidChain) {
  ChainFixture F;
  ParameterlessPolicy Policy(5);
  // First parameterless at chain index 3 -> depth 3.
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.Paramless,
                                 F.ParamVirtual2, F.ParamVirtual};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 3u);
}

TEST(PolicyTest, ParameterlessNoStopRunsToMax) {
  ChainFixture F;
  ParameterlessPolicy Policy(4);
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.ParamVirtual2};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 4u);
}

TEST(PolicyTest, ClassMethodsStopsAtStatic) {
  ChainFixture F;
  ClassMethodsPolicy Policy(5);
  // Static driver at chain index 2 -> depth 2 (the paper: "we only
  // traverse two edges before encountering the first class method").
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2, F.StaticM,
                                 F.ParamVirtual, F.ParamVirtual2};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 2u);
}

TEST(PolicyTest, LargeMethodsStopsAtLarge) {
  ChainFixture F;
  LargeMethodsPolicy Policy(5);
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.LargeM, F.ParamVirtual2};
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 0), 3u);
  // Large callee still records the mandatory depth-1 edge.
  std::vector<MethodId> LargeCallee = {F.LargeM, F.ParamVirtual,
                                       F.ParamVirtual2};
  EXPECT_EQ(Policy.traceDepth(F.P, LargeCallee, 0), 1u);
}

TEST(PolicyTest, HybridStopsAtEitherCondition) {
  ChainFixture F;
  HybridParamClassPolicy H1(5);
  HybridParamLargePolicy H2(5);
  std::vector<MethodId> StaticChain = {F.ParamVirtual, F.StaticM,
                                       F.ParamVirtual2, F.ParamVirtual,
                                       F.ParamVirtual2};
  std::vector<MethodId> ParamlessChain = {F.ParamVirtual, F.Paramless,
                                          F.ParamVirtual2, F.ParamVirtual,
                                          F.ParamVirtual2};
  std::vector<MethodId> LargeChain = {F.ParamVirtual, F.LargeM,
                                      F.ParamVirtual2, F.ParamVirtual,
                                      F.ParamVirtual2};
  EXPECT_EQ(H1.traceDepth(F.P, StaticChain, 0), 1u);
  EXPECT_EQ(H1.traceDepth(F.P, ParamlessChain, 0), 1u);
  EXPECT_EQ(H1.traceDepth(F.P, LargeChain, 0), 4u)
      << "hybrid1 ignores large methods";
  EXPECT_EQ(H2.traceDepth(F.P, LargeChain, 0), 1u);
  EXPECT_EQ(H2.traceDepth(F.P, StaticChain, 0), 4u)
      << "hybrid2 ignores class methods";
}

TEST(PolicyTest, FactoryProducesAllKindsWithNames) {
  for (PolicyKind K : allPolicyKinds()) {
    auto Policy = makePolicy(K, 4);
    ASSERT_NE(Policy, nullptr);
    EXPECT_FALSE(Policy->name().empty());
    if (K == PolicyKind::ContextInsensitive)
      EXPECT_EQ(Policy->maxDepth(), 1u);
    else
      EXPECT_EQ(Policy->maxDepth(), 4u);
    // Only the imprecision policy exposes a table.
    EXPECT_EQ(Policy->imprecisionTable() != nullptr,
              K == PolicyKind::AdaptiveImprecision);
  }
}

//===----------------------------------------------------------------------===//
// ImprecisionTable
//===----------------------------------------------------------------------===//

TEST(ImprecisionTableTest, DefaultsToDepthOne) {
  ImprecisionTable T;
  EXPECT_EQ(T.depthFor(3, 7), 1u);
  EXPECT_FALSE(T.gaveUp(3, 7));
  EXPECT_FALSE(T.isResolved(3, 7));
}

TEST(ImprecisionTableTest, RaiseClimbsTowardMax) {
  ImprecisionTable T;
  EXPECT_EQ(T.raise(3, 7, /*MaxDepth=*/4, /*GiveUpAfter=*/10), 2u);
  EXPECT_EQ(T.raise(3, 7, 4, 10), 3u);
  EXPECT_EQ(T.raise(3, 7, 4, 10), 4u);
  // Hitting the depth cap with raises to spare freezes the site at the
  // cap — running out of depth is not evidence of polymorphism.
  EXPECT_EQ(T.raise(3, 7, 4, 10), 4u);
  EXPECT_FALSE(T.gaveUp(3, 7));
  EXPECT_TRUE(T.isResolved(3, 7));
  EXPECT_EQ(T.depthFor(3, 7), 4u);
}

TEST(ImprecisionTableTest, CapFreezeIsSticky) {
  ImprecisionTable T;
  for (int I = 0; I != 3; ++I)
    T.raise(3, 7, /*MaxDepth=*/4, /*GiveUpAfter=*/10);
  T.raise(3, 7, 4, 10); // freezes at the cap
  // Further raises never flip a cap-frozen site into give-up, even once
  // the raise count passes GiveUpAfter.
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(T.raise(3, 7, 4, 10), 4u);
  EXPECT_FALSE(T.gaveUp(3, 7));
  EXPECT_TRUE(T.isResolved(3, 7));
  EXPECT_EQ(T.depthFor(3, 7), 4u);
}

TEST(ImprecisionTableTest, GiveUpRequiresExhaustedRaises) {
  ImprecisionTable T;
  // Deep cap, tight raise budget: the budget runs out before the cap.
  T.raise(8, 1, /*MaxDepth=*/10, /*GiveUpAfter=*/2);
  T.raise(8, 1, 10, 2);
  EXPECT_EQ(T.raise(8, 1, 10, 2), 1u) << "raises exhausted: abandoned";
  EXPECT_TRUE(T.gaveUp(8, 1));
  EXPECT_FALSE(T.isResolved(8, 1));
  EXPECT_EQ(T.depthFor(8, 1), 1u);
  // Give-up is terminal: later raises keep returning depth 1.
  EXPECT_EQ(T.raise(8, 1, 10, 2), 1u);
  EXPECT_TRUE(T.gaveUp(8, 1));
}

TEST(ImprecisionTableTest, SitesAreIndependent) {
  ImprecisionTable T;
  // Site A freezes at the cap; site B gives up; site C resolves early.
  for (int I = 0; I != 4; ++I)
    T.raise(1, 1, /*MaxDepth=*/3, /*GiveUpAfter=*/10);
  for (int I = 0; I != 3; ++I)
    T.raise(2, 2, /*MaxDepth=*/10, /*GiveUpAfter=*/2);
  T.raise(3, 3, /*MaxDepth=*/10, /*GiveUpAfter=*/10);
  T.markResolved(3, 3);
  EXPECT_TRUE(T.isResolved(1, 1));
  EXPECT_EQ(T.depthFor(1, 1), 3u);
  EXPECT_TRUE(T.gaveUp(2, 2));
  EXPECT_EQ(T.depthFor(2, 2), 1u);
  EXPECT_TRUE(T.isResolved(3, 3));
  EXPECT_EQ(T.depthFor(3, 3), 2u);
  EXPECT_EQ(T.numTrackedSites(), 3u);
}

TEST(ImprecisionTableTest, GiveUpAfterBoundsRaises) {
  ImprecisionTable T;
  T.raise(1, 1, /*MaxDepth=*/10, /*GiveUpAfter=*/2);
  T.raise(1, 1, 10, 2);
  EXPECT_EQ(T.raise(1, 1, 10, 2), 1u) << "third raise gives up";
  EXPECT_TRUE(T.gaveUp(1, 1));
}

TEST(ImprecisionTableTest, ResolvedFreezesDepth) {
  ImprecisionTable T;
  T.raise(5, 2, 4, 10);
  T.raise(5, 2, 4, 10);
  T.markResolved(5, 2);
  EXPECT_TRUE(T.isResolved(5, 2));
  EXPECT_EQ(T.depthFor(5, 2), 3u);
  // Further raises are ignored once resolved.
  EXPECT_EQ(T.raise(5, 2, 4, 10), 3u);
  EXPECT_EQ(T.depthFor(5, 2), 3u);
}

TEST(ImprecisionTableTest, PolicyConsultsTable) {
  ChainFixture F;
  auto Table = std::make_shared<ImprecisionTable>();
  AdaptiveImprecisionPolicy Policy(5, Table);
  std::vector<MethodId> Chain = {F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.ParamVirtual2,
                                 F.ParamVirtual, F.ParamVirtual2};
  // Default: context-insensitive.
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, /*InnermostSite=*/9), 1u);
  // After the organizer raises the site, the walk goes deeper.
  Table->raise(F.ParamVirtual2, 9, 5, 10);
  Table->raise(F.ParamVirtual2, 9, 5, 10);
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 9), 3u);
  // Other sites remain at depth 1.
  EXPECT_EQ(Policy.traceDepth(F.P, Chain, 10), 1u);
}
