//===- tests/ServeTest.cpp - Serve mode and the shared code cache ----------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Coverage of the src/share/ subsystem and the `aoci serve` harness
// mode: the plan-fingerprint key, the SharedCodeCache index protocol
// (publish / duplicate / hit / tombstoning capacity eviction), the
// tenant-list CLI grammar, and the serve driver's contracts — byte
// identity across --jobs, sharing as a pure accounting optimization
// (results never change, sharing off reproduces solo runs exactly),
// cross-session eviction deopting every installer under audits, and
// warm-start interop. The share-* trace stream's bytes are pinned by a
// golden fixture (same protocol as TraceTest: AOCI_UPDATE_GOLDEN=1
// regenerates).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Serve.h"
#include "share/PlanFingerprint.h"
#include "share/SharedCodeCache.h"
#include "support/Audit.h"
#include "profile/ProfileIo.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

using namespace aoci;

namespace {

/// The serve session configuration replicated as a solo RunConfig, so
/// solo references are directly comparable (same policy, depth, OSR).
RunConfig soloConfig(const std::string &Workload, double Scale) {
  const ServeConfig Serve;
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = Serve.Policy;
  Config.MaxDepth = Serve.MaxDepth;
  Config.Aos = Serve.Aos;
  Config.Model = Serve.Model;
  return Config;
}

ServeConfig smallServe(const std::string &Workload, unsigned Count,
                       double Scale) {
  ServeConfig Config;
  Config.Tenants.push_back({Workload, Count});
  Config.Params.Scale = Scale;
  return Config;
}

/// Same update-or-compare protocol as TraceTest / CodeCacheTest:
/// AOCI_UPDATE_GOLDEN=1 rewrites the fixture instead of comparing.
void expectMatchesGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = std::string(AOCI_GOLDEN_DIR) + "/" + Name;
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream OutFile(Path, std::ios::binary);
    ASSERT_TRUE(OutFile) << "cannot write " << Path;
    OutFile << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "share trace export drifted from " << Path
      << "; either the share protocol or the JSON serialization "
         "changed. If intentional, rerun with AOCI_UPDATE_GOLDEN=1, "
         "review the fixture diff, and update OBSERVABILITY.md if the "
         "schema moved";
}

} // namespace

//===----------------------------------------------------------------------===//
// (1) The tenant-list grammar.
//===----------------------------------------------------------------------===//

TEST(ServeTenantListTest, AcceptsWorkloadsScenariosAndCounts) {
  std::vector<ServeTenantSpec> Tenants;
  std::string Error;
  ASSERT_TRUE(
      parseTenantList("compress:4,scn-phase-flip,db:2", Tenants, Error))
      << Error;
  ASSERT_EQ(Tenants.size(), 3u);
  EXPECT_EQ(Tenants[0], (ServeTenantSpec{"compress", 4}));
  EXPECT_EQ(Tenants[1], (ServeTenantSpec{"scn-phase-flip", 1}));
  EXPECT_EQ(Tenants[2], (ServeTenantSpec{"db", 2}));
}

TEST(ServeTenantListTest, RejectsBadInput) {
  std::vector<ServeTenantSpec> Tenants;
  std::string Error;
  for (const char *Bad :
       {"", "nope", "scn-nope", "compress:0", "compress:1000",
        "compress:x", "compress:", "compress,,db", "compress:4:2"}) {
    EXPECT_FALSE(parseTenantList(Bad, Tenants, Error))
        << "accepted \"" << Bad << "\"";
    EXPECT_FALSE(Error.empty());
  }
}

//===----------------------------------------------------------------------===//
// (2) The fingerprint key.
//===----------------------------------------------------------------------===//

TEST(PlanFingerprintTest, CanonicalAndSensitiveToWhatCodeIs) {
  const Workload W = makeWorkload("compress", WorkloadParams{1, 0.05});
  CodeVariant V;
  V.M = W.Prog.entryMethod();
  V.Level = OptLevel::Opt1;
  V.MachineUnits = 40;

  const std::string F = planFingerprint(W.Prog, V);
  // Name-keyed and self-describing: the qualified root name, the level,
  // and the unit count are all legible in the key.
  EXPECT_NE(F.find(W.Prog.qualifiedName(V.M)), std::string::npos);
  EXPECT_NE(F.find("|u40|"), std::string::npos);
  // Deterministic, and stable across Program instances of the same
  // workload — the property that makes cross-session keys meet.
  const Workload W2 = makeWorkload("compress", WorkloadParams{1, 0.05});
  CodeVariant V2 = {};
  V2.M = W2.Prog.entryMethod();
  V2.Level = OptLevel::Opt1;
  V2.MachineUnits = 40;
  EXPECT_EQ(F, planFingerprint(W2.Prog, V2));
  // Everything that changes what the code *is* changes the key.
  V2.MachineUnits = 41;
  EXPECT_NE(F, planFingerprint(W2.Prog, V2));
  V2.MachineUnits = 40;
  V2.Level = OptLevel::Opt2;
  EXPECT_NE(F, planFingerprint(W2.Prog, V2));
}

//===----------------------------------------------------------------------===//
// (3) The shared index protocol, unit-level (synthetic variants).
//===----------------------------------------------------------------------===//

namespace {

CodeVariant syntheticVariant(uint64_t CodeBytes, uint64_t CompileCycles) {
  CodeVariant V;
  V.Level = OptLevel::Opt1;
  V.MachineUnits = 10;
  V.CodeBytes = CodeBytes;
  V.CompileCycles = CompileCycles;
  // In the real flow the session bridge tags a variant before it is
  // ever registered as an installer; the auditor checks exactly that.
  V.SharedIn = true;
  return V;
}

} // namespace

TEST(SharedCodeCacheTest, PublishLookupHitAndDuplicate) {
  audit::setEnabled(true);
  SharedCodeCache Cache;
  const CodeVariant A = syntheticVariant(500, 9000);
  const CodeVariant B = syntheticVariant(500, 9999);

  EXPECT_EQ(Cache.lookup("m|opt1|u10|b3()"), nullptr);
  const size_t Idx = Cache.publish("m|opt1|u10|b3()", A, /*Session=*/0,
                                   /*Round=*/0);
  ASSERT_NE(Idx, static_cast<size_t>(-1));
  Cache.audit("publish");
  EXPECT_EQ(Cache.liveBytes(), 500u);
  EXPECT_EQ(Cache.numLiveEntries(), 1u);
  EXPECT_EQ(Cache.entry(Idx).MethodName, "m");
  EXPECT_EQ(Cache.entry(Idx).FullCompileCycles, 9000u);
  EXPECT_EQ(Cache.entry(Idx).Installers.size(), 1u);

  // First committer wins: a same-key publish is counted and rejected,
  // and never perturbs the accepted entry.
  EXPECT_EQ(Cache.publish("m|opt1|u10|b3()", B, /*Session=*/1, /*Round=*/0),
            static_cast<size_t>(-1));
  EXPECT_EQ(Cache.duplicatePublishes(), 1u);
  EXPECT_EQ(Cache.entry(Idx).FullCompileCycles, 9000u);

  size_t LookupIdx = 0;
  const ShareEntry *E = Cache.lookup("m|opt1|u10|b3()", &LookupIdx);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(LookupIdx, Idx);
  Cache.recordHit(Idx, B, /*Session=*/1, /*Round=*/3);
  EXPECT_EQ(Cache.entry(Idx).Hits, 1u);
  EXPECT_EQ(Cache.entry(Idx).LastHitRound, 3u);
  EXPECT_EQ(Cache.entry(Idx).Installers.size(), 2u);
  Cache.audit("hit");
}

TEST(SharedCodeCacheTest, CapacityEvictsColdestTombstonesAndRepublishes) {
  audit::setEnabled(true);
  SharedCodeCache Cache(ShareCacheConfig{1000});
  const CodeVariant V = syntheticVariant(400, 9000);
  const size_t A = Cache.publish("a", V, 0, /*Round=*/0);
  const size_t B = Cache.publish("b", V, 0, /*Round=*/0);
  Cache.recordHit(A, V, 1, /*Round=*/1); // "a" is now the hotter entry.
  EXPECT_TRUE(Cache.enforceCapacity(1).empty()) << "800 of 1000 fits";

  const size_t C = Cache.publish("c", V, 0, /*Round=*/2);
  const std::vector<size_t> Victims = Cache.enforceCapacity(2);
  // Coldest first: "b" (last touched round 0) goes; "a" (hit in round
  // 1) and the fresh "c" survive.
  ASSERT_EQ(Victims.size(), 1u);
  EXPECT_EQ(Victims[0], B);
  EXPECT_TRUE(Cache.entry(B).Tombstoned);
  EXPECT_EQ(Cache.lookup("b"), nullptr) << "tombstones are unmapped";
  EXPECT_NE(Cache.lookup("a"), nullptr);
  EXPECT_NE(Cache.lookup("c"), nullptr);
  EXPECT_EQ(Cache.liveBytes(), 800u);
  EXPECT_EQ(Cache.sharedEvictions(), 1u);
  // The tombstone keeps its installer list until the driver applies the
  // per-session evictions; deregistration then empties it.
  EXPECT_EQ(Cache.entry(B).Installers.size(), 1u);
  Cache.deregisterInstaller(B, 0, &V);
  EXPECT_TRUE(Cache.entry(B).Installers.empty());
  Cache.audit("evict");

  // A tombstoned key may be re-published; the index stays coherent.
  const size_t B2 = Cache.publish("b", V, 2, /*Round=*/3);
  ASSERT_NE(B2, static_cast<size_t>(-1));
  EXPECT_NE(Cache.lookup("b"), nullptr);
  EXPECT_GT(Cache.entry(B2).PublishSeq, Cache.entry(C).PublishSeq);
  Cache.audit("republish");
  EXPECT_GE(Cache.peakBytes(), 1200u);
}

//===----------------------------------------------------------------------===//
// (4) Serve determinism: --jobs never changes a simulated byte.
//===----------------------------------------------------------------------===//

TEST(ServeTest, ByteIdenticalAcrossJobCounts) {
  ServeConfig Config;
  Config.Tenants = {{"compress", 2}, {"scn-phase-flip", 1}, {"db", 1}};
  Config.Params.Scale = 0.1;
  Config.Trace = true;
  const ServeResults Serial = runServe(Config, /*Jobs=*/1);
  const ServeResults Parallel = runServe(Config, /*Jobs=*/4);

  EXPECT_EQ(exportServeCsv(Serial), exportServeCsv(Parallel));
  std::ostringstream SerialTrace, ParallelTrace;
  exportServeTrace(SerialTrace, Serial);
  exportServeTrace(ParallelTrace, Parallel);
  EXPECT_EQ(SerialTrace.str(), ParallelTrace.str());
  EXPECT_EQ(Serial.Rounds, Parallel.Rounds);
  EXPECT_EQ(Serial.SharePeakBytes, Parallel.SharePeakBytes);
}

//===----------------------------------------------------------------------===//
// (5) Sharing is an accounting optimization, never a semantic one.
//===----------------------------------------------------------------------===//

TEST(ServeTest, SameWorkloadSessionsHitAndPayLess) {
  const RunResult Solo = runExperiment(soloConfig("compress", 0.1));
  const ServeResults Serve = runServe(smallServe("compress", 4, 0.1), 1);

  ASSERT_EQ(Serve.Sessions.size(), 4u);
  for (const ServeSessionResult &S : Serve.Sessions)
    EXPECT_EQ(S.ProgramResult, Solo.ProgramResult)
        << "session " << S.SessionId;
  // The 1-round stagger lets sessions 1..3 hit everything session 0
  // published: (N-1)/N of all optimizing compilations are hits.
  EXPECT_GT(Serve.hitRate(), 0.5);
  EXPECT_GT(Serve.totalCompileCyclesSaved(), 0u);
  EXPECT_LT(Serve.totalCompileCyclesPaid(), 4 * Solo.OptCompileCycles);
  EXPECT_EQ(Serve.ShareDuplicatePublishes, 0u)
      << "the stagger means no two sessions first-compile in one round";
  // Hits are visible in the byte split: a hitting session's variants
  // are shared-in, and the publisher's accepted publishes tag its own.
  for (const ServeSessionResult &S : Serve.Sessions)
    EXPECT_GT(S.SharedCodeBytes, 0u) << "session " << S.SessionId;
}

TEST(ServeTest, SharingOffReproducesSoloRunsExactly) {
  const RunResult Solo = runExperiment(soloConfig("compress", 0.1));
  ServeConfig Config = smallServe("compress", 2, 0.1);
  Config.ShareEnabled = false;
  const ServeResults Serve = runServe(Config, 1);

  ASSERT_EQ(Serve.Sessions.size(), 2u);
  for (const ServeSessionResult &S : Serve.Sessions) {
    EXPECT_EQ(S.WallCycles, Solo.WallCycles);
    EXPECT_EQ(S.ProgramResult, Solo.ProgramResult);
    EXPECT_EQ(S.OptCompileCycles, Solo.OptCompileCycles);
    EXPECT_EQ(S.ShareHits + S.SharePublishes + S.ShareCyclesSaved, 0u);
    EXPECT_EQ(S.SharedCodeBytes, 0u);
  }
  EXPECT_EQ(Serve.SharePublishesAccepted, 0u);
  EXPECT_EQ(Serve.SharePeakBytes, 0u);
}

//===----------------------------------------------------------------------===//
// (6) Cross-session eviction: a shared eviction deopts every installer.
//===----------------------------------------------------------------------===//

TEST(ServeTest, SharedEvictionDeoptsEveryInstallingSession) {
  audit::setEnabled(true); // every barrier audits the index + registries
  const RunResult Solo = runExperiment(soloConfig("compress", 0.1));
  ServeConfig Config = smallServe("compress", 4, 0.1);
  Config.ShareCapacityBytes = 4000; // far below the ~8k working set
  const ServeResults Serve = runServe(Config, 1);

  EXPECT_GT(Serve.ShareEvictions, 0u);
  EXPECT_LE(Serve.ShareLiveBytes, Config.ShareCapacityBytes);
  uint64_t TotalApplied = 0, TotalDeopts = 0;
  unsigned SessionsEvicted = 0;
  for (const ServeSessionResult &S : Serve.Sessions) {
    // Forced evictions never change what the program computes.
    EXPECT_EQ(S.ProgramResult, Solo.ProgramResult)
        << "session " << S.SessionId;
    TotalApplied += S.SharedEvictionsApplied;
    TotalDeopts += S.Deopts;
    SessionsEvicted += S.SharedEvictionsApplied > 0;
  }
  EXPECT_GT(TotalApplied, 0u);
  EXPECT_GE(SessionsEvicted, 2u)
      << "an eviction fans out across sessions, not just the publisher";
  EXPECT_GT(TotalDeopts, 0u)
      << "a variant evicted mid-activation walks back through deopt";
}

//===----------------------------------------------------------------------===//
// (7) Warm start composes with sharing.
//===----------------------------------------------------------------------===//

TEST(ServeTest, WarmStartedSessionsStillShare) {
  RunConfig Capture = soloConfig("compress", 0.1);
  Capture.CaptureProfile = true;
  const RunResult Cold = runExperiment(Capture);
  auto Profile = std::make_shared<ProfileData>();
  std::string Error;
  ASSERT_TRUE(parseProfile(Cold.CapturedProfile, *Profile, Error)) << Error;

  ServeConfig Config = smallServe("compress", 3, 0.1);
  Config.WarmStart = Profile;
  const ServeResults Serve = runServe(Config, 1);

  ASSERT_EQ(Serve.Sessions.size(), 3u);
  for (const ServeSessionResult &S : Serve.Sessions) {
    EXPECT_GT(S.WarmStartApplied, 0u) << "session " << S.SessionId;
    EXPECT_EQ(S.ProgramResult, Cold.ProgramResult);
  }
  // Warm-started sessions are as identical to each other as cold ones:
  // later starters still hit what the first published.
  EXPECT_GT(Serve.ShareTotalHits, 0u);
}

//===----------------------------------------------------------------------===//
// (8) Golden: the share-* event stream's bytes are pinned.
//===----------------------------------------------------------------------===//

TEST(ServeGoldenTest, ShareTraceJsonMatchesGolden) {
  ServeConfig Config = smallServe("compress", 2, 0.05);
  Config.Trace = true;
  std::string Error;
  uint32_t Mask = 0;
  ASSERT_TRUE(
      parseTraceFilter("share-publish,share-hit,share-evict", Mask, Error))
      << Error;
  Config.TraceKindMask = Mask;
  const ServeResults Serve = runServe(Config, 1);
  std::ostringstream OS;
  exportServeTrace(OS, Serve);
  expectMatchesGolden("trace_share.golden", OS.str());
}
