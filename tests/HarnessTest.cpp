//===- tests/HarnessTest.cpp - Unit tests for src/harness -------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "harness/CsvExport.h"
#include "harness/Experiment.h"
#include "harness/Reporters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace aoci;

namespace {

RunConfig smallConfig(const std::string &Workload,
                      PolicyKind Policy = PolicyKind::ContextInsensitive,
                      unsigned Depth = 1) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = 0.2;
  Config.Policy = Policy;
  Config.MaxDepth = Depth;
  return Config;
}

} // namespace

TEST(ExperimentTest, RunCollectsAllMetrics) {
  RunResult R = runExperiment(smallConfig("compress"));
  EXPECT_EQ(R.WorkloadName, "compress");
  EXPECT_GT(R.WallCycles, 0u);
  EXPECT_GT(R.SamplesTaken, 0u);
  EXPECT_GT(R.BaselineCompileCycles, 0u);
  EXPECT_GT(R.ClassesLoaded, 40u);
  EXPECT_GT(R.MethodsCompiled, 100u);
  EXPECT_GT(R.BytecodesCompiled, 1000u);
  // Components are a small fraction of execution.
  double Total = 0;
  for (unsigned C = 0; C != NumAosComponents; ++C)
    Total += R.componentFraction(static_cast<AosComponent>(C));
  EXPECT_GT(Total, 0.0);
  EXPECT_LT(Total, 0.25);
}

TEST(ExperimentTest, RunsAreDeterministic) {
  RunResult A = runExperiment(smallConfig("jess", PolicyKind::Fixed, 3));
  RunResult B = runExperiment(smallConfig("jess", PolicyKind::Fixed, 3));
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.OptBytesGenerated, B.OptBytesGenerated);
  EXPECT_EQ(A.ProgramResult, B.ProgramResult);
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken);
}

TEST(ExperimentTest, TraceStatsOnlyWhenRequested) {
  RunConfig Config = smallConfig("jack", PolicyKind::Fixed, 4);
  RunResult Without = runExperiment(Config);
  EXPECT_EQ(Without.TraceStats.numSamples(), 0u);
  Config.CollectTraceStats = true;
  RunResult With = runExperiment(Config);
  EXPECT_GT(With.TraceStats.numSamples(), 0u);
}

TEST(GridTest, GridComputesRelativeMetrics) {
  GridConfig Config;
  Config.Workloads = {"compress", "jack"};
  Config.Policies = {PolicyKind::Fixed, PolicyKind::Parameterless};
  Config.Depths = {2, 3};
  Config.Params.Scale = 0.15;
  unsigned ProgressLines = 0;
  GridResults Results =
      runGrid(Config, [&](const std::string &) { ++ProgressLines; });
  // One baseline + 4 cells per workload.
  EXPECT_EQ(ProgressLines, 2u * (1 + 2 * 2));
  ASSERT_EQ(Results.workloads().size(), 2u);

  for (const std::string &W : Config.Workloads) {
    EXPECT_GT(Results.baseline(W).WallCycles, 0u);
    for (PolicyKind Policy : Config.Policies) {
      for (unsigned D : Config.Depths) {
        const RunResult &Cell = Results.cell(W, Policy, D);
        EXPECT_EQ(Cell.Policy, Policy);
        EXPECT_EQ(Cell.MaxDepth, D);
        // The relative metrics must be finite and modest at this scale.
        double S = Results.speedupPercent(W, Policy, D);
        EXPECT_GT(S, -80.0);
        EXPECT_LT(S, 80.0);
      }
    }
  }
}

TEST(GridTest, BaselineIsItsOwnReference) {
  GridConfig Config;
  Config.Workloads = {"compress"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {2};
  Config.Params.Scale = 0.1;
  GridResults Results = runGrid(Config);
  const RunResult &Base = Results.baseline("compress");
  EXPECT_EQ(Base.Policy, PolicyKind::ContextInsensitive);
  EXPECT_EQ(Base.MaxDepth, 1u);
}

//===----------------------------------------------------------------------===//
// Reporters
//===----------------------------------------------------------------------===//

namespace {

GridResults miniGrid() {
  GridConfig Config;
  Config.Workloads = {"compress"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {2};
  Config.Params.Scale = 0.1;
  return runGrid(Config);
}

} // namespace

TEST(ReporterTest, Table1ContainsAllWorkloads) {
  std::vector<RunResult> Runs;
  Runs.push_back(runExperiment(smallConfig("compress")));
  Runs.push_back(runExperiment(smallConfig("db")));
  std::string Out = reportTable1(Runs);
  EXPECT_NE(Out.find("compress"), std::string::npos);
  EXPECT_NE(Out.find("db"), std::string::npos);
  EXPECT_NE(Out.find("Classes"), std::string::npos);
  EXPECT_NE(Out.find("Bytecodes"), std::string::npos);
}

TEST(ReporterTest, FigureGridsContainPanelsAndMeans) {
  GridResults Results = miniGrid();
  std::vector<PolicyKind> Policies = {PolicyKind::Fixed};
  std::vector<unsigned> Depths = {2};
  std::string Fig4 = reportFigure4(Results, Policies, Depths);
  EXPECT_NE(Fig4.find("Figure 4"), std::string::npos);
  EXPECT_NE(Fig4.find("(fixed)"), std::string::npos);
  EXPECT_NE(Fig4.find("harMean"), std::string::npos);
  EXPECT_NE(Fig4.find("max=2"), std::string::npos);
  std::string Fig5 = reportFigure5(Results, Policies, Depths);
  EXPECT_NE(Fig5.find("Figure 5"), std::string::npos);
  std::string Compile = reportCompileTime(Results, Policies, Depths);
  EXPECT_NE(Compile.find("Compile-time"), std::string::npos);
}

TEST(ReporterTest, FigureSixListsAllComponents) {
  GridResults Results = miniGrid();
  std::string Out = reportFigure6(Results, {PolicyKind::Fixed}, {2});
  for (unsigned C = 0; C != NumAosComponents; ++C)
    EXPECT_NE(Out.find(aosComponentName(static_cast<AosComponent>(C))),
              std::string::npos);
  EXPECT_NE(Out.find("cins"), std::string::npos);
  EXPECT_NE(Out.find("fixed max=2"), std::string::npos);
}

TEST(ReporterTest, SectionFourTable) {
  RunConfig Config = smallConfig("jess", PolicyKind::Fixed, 5);
  Config.CollectTraceStats = true;
  std::vector<RunResult> Runs = {runExperiment(Config)};
  std::string Out = reportSection4(Runs);
  EXPECT_NE(Out.find("Section 4"), std::string::npos);
  EXPECT_NE(Out.find("jess"), std::string::npos);
  EXPECT_NE(Out.find("paramless<=5"), std::string::npos);
}

TEST(ReporterTest, SummaryHasAllLines) {
  GridResults Results = miniGrid();
  std::string Out = reportSummary(Results, {PolicyKind::Fixed}, {2});
  EXPECT_NE(Out.find("mean speedup"), std::string::npos);
  EXPECT_NE(Out.find("largest code space reduction"), std::string::npos);
  EXPECT_NE(Out.find("largest compile time reduction"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CSV export and best-of-N trials
//===----------------------------------------------------------------------===//

TEST(CsvExportTest, EmitsHeaderBaselineAndCells) {
  GridResults Results = miniGrid();
  std::string Csv = exportCsv(Results, {PolicyKind::Fixed}, {2});
  // Header + baseline row + one cell row.
  EXPECT_EQ(std::count(Csv.begin(), Csv.end(), '\n'), 3);
  EXPECT_NE(Csv.find("workload,policy,max_depth"), std::string::npos);
  EXPECT_NE(Csv.find("compress,cins,1,"), std::string::npos);
  EXPECT_NE(Csv.find("compress,fixed,2,"), std::string::npos);
  // Every row has the same number of commas as the header.
  std::istringstream In(Csv);
  std::string Line, Header;
  std::getline(In, Header);
  const auto Commas = std::count(Header.begin(), Header.end(), ',');
  while (std::getline(In, Line))
    EXPECT_EQ(std::count(Line.begin(), Line.end(), ','), Commas);
}

TEST(TrialsTest, BestOfPicksTheFastestJitterSeed) {
  RunConfig Config = smallConfig("jack", PolicyKind::Fixed, 3);
  RunResult Best = runBestOf(Config, 3);
  // The best-of result can never be slower than the first trial.
  RunResult First = runExperiment(Config);
  EXPECT_LE(Best.WallCycles, First.WallCycles);
  // Trials differ only in sampling timing: results are identical.
  EXPECT_EQ(Best.ProgramResult, First.ProgramResult);
}

TEST(TrialsTest, JitterSeedChangesTimelineNotSemantics) {
  RunConfig A = smallConfig("jess", PolicyKind::Fixed, 3);
  RunConfig B = A;
  B.Model.SampleJitterSeed = 999;
  RunResult RA = runExperiment(A);
  RunResult RB = runExperiment(B);
  EXPECT_EQ(RA.ProgramResult, RB.ProgramResult);
  EXPECT_NE(RA.SamplesTaken + RA.WallCycles,
            RB.SamplesTaken + RB.WallCycles)
      << "different jitter seeds should perturb the timeline";
}
