//===- tests/WorkloadTest.cpp - Unit tests for src/workload -----------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "bytecode/SizeClass.h"
#include "bytecode/Verifier.h"
#include "core/AdaptiveSystem.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"
#include "workload/Workload.h"
#include "workload/WorkloadCommon.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

WorkloadParams tinyParams() {
  WorkloadParams P;
  P.Seed = 7;
  P.Scale = 0.02; // Just enough to run the kernel, fast.
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Every workload: structural sanity
//===----------------------------------------------------------------------===//

class AllWorkloadsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloadsTest, VerifiesCleanly) {
  Workload W = makeWorkload(GetParam(), tinyParams());
  EXPECT_EQ(W.Name, GetParam());
  auto Errors = verifyProgram(W.Prog);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  EXPECT_FALSE(W.Entries.empty());
}

TEST_P(AllWorkloadsTest, RunsToCompletionWithoutAos) {
  Workload W = makeWorkload(GetParam(), tinyParams());
  VirtualMachine VM(W.Prog);
  for (MethodId Entry : W.Entries)
    VM.addThread(Entry);
  VM.run(/*CycleLimit=*/2'000'000'000ULL);
  for (const auto &T : VM.threads())
    EXPECT_TRUE(T->Finished) << "thread did not finish";
  EXPECT_GT(VM.counters().InstructionsExecuted, 1000u);
}

TEST_P(AllWorkloadsTest, DeterministicAcrossRuns) {
  auto runOnce = [&]() {
    Workload W = makeWorkload(GetParam(), tinyParams());
    VirtualMachine VM(W.Prog);
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run();
    return std::pair<uint64_t, int64_t>(
        VM.cycles(), VM.threads().front()->Result.asInt());
  };
  auto A = runOnce();
  auto B = runOnce();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

TEST_P(AllWorkloadsTest, RunsUnderAdaptiveSystem) {
  WorkloadParams P = tinyParams();
  P.Scale = 0.15;
  Workload W = makeWorkload(GetParam(), P);

  // Reference result without any adaptation.
  int64_t Expected;
  {
    VirtualMachine VM(W.Prog);
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run();
    Expected = VM.threads().front()->Result.asInt();
  }

  // Same program under cins and under a context-sensitive policy:
  // semantics must be preserved by all the inlining.
  for (PolicyKind Kind :
       {PolicyKind::ContextInsensitive, PolicyKind::HybridParamLarge}) {
    VirtualMachine VM(W.Prog);
    auto Policy = makePolicy(Kind, 4);
    AdaptiveSystem Aos(VM, *Policy);
    Aos.attach();
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run();
    EXPECT_EQ(VM.threads().front()->Result.asInt(), Expected)
        << W.Name << " under " << policyKindName(Kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloadsTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Structural signatures per workload
//===----------------------------------------------------------------------===//

TEST(WorkloadShapeTest, TableOneOrderingOfProgramSizes) {
  // Table 1's relative ordering: jbb is the biggest program, db/compress
  // among the smallest, javac has the most bytecodes of SPECjvm98.
  WorkloadParams P = tinyParams();
  auto Count = [&](const std::string &Name) {
    Workload W = makeWorkload(Name, P);
    return std::tuple<unsigned, unsigned, uint64_t>(
        W.Prog.numClasses(), W.Prog.numMethods(), W.Prog.totalBytecodes());
  };
  auto [JbbC, JbbM, JbbB] = Count("SPECjbb2000");
  auto [DbC, DbM, DbB] = Count("db");
  auto [JavacC, JavacM, JavacB] = Count("javac");
  auto [CompressC, CompressM, CompressB] = Count("compress");
  EXPECT_GT(JbbM, JavacM);
  EXPECT_GT(JavacB, CompressB);
  EXPECT_GT(JavacC, DbC);
  EXPECT_GT(JbbB, DbB);
  EXPECT_LT(DbC, 60u);
  EXPECT_GT(JavacC, 150u);
  (void)JbbC;
  (void)DbM;
  (void)JavacB;
  (void)CompressC;
  (void)CompressM;
}

TEST(WorkloadShapeTest, JavacHasLargeMethodsInTheChain) {
  Workload W = makeWorkload("javac", tinyParams());
  MethodId Unit = W.Prog.findMethod("Parser.compileUnit");
  MethodId Expr = W.Prog.findMethod("Parser.parseExpr");
  MethodId Factor = W.Prog.findMethod("Parser.parseFactor");
  ASSERT_NE(Unit, InvalidMethodId);
  ASSERT_NE(Expr, InvalidMethodId);
  ASSERT_NE(Factor, InvalidMethodId);
  EXPECT_EQ(classifyMethod(W.Prog.method(Unit)), SizeClass::Large);
  EXPECT_EQ(classifyMethod(W.Prog.method(Expr)), SizeClass::Large);
  EXPECT_NE(classifyMethod(W.Prog.method(Factor)), SizeClass::Large);
}

TEST(WorkloadShapeTest, JackLexerIsParameterless) {
  Workload W = makeWorkload("jack", tinyParams());
  MethodId Next = W.Prog.findMethod("Lexer.nextToken");
  ASSERT_NE(Next, InvalidMethodId);
  EXPECT_TRUE(W.Prog.method(Next).isParameterless());
  EXPECT_TRUE(W.Prog.method(Next).hasReceiver());
}

TEST(WorkloadShapeTest, MtrtHasTwoThreads) {
  Workload W = makeWorkload("mtrt", tinyParams());
  EXPECT_EQ(W.Entries.size(), 2u);
}

TEST(WorkloadShapeTest, DbComparatorSiteIsFourWayPolymorphic) {
  Workload W = makeWorkload("db", tinyParams());
  ClassHierarchy CH(W.Prog);
  MethodId Compare = InvalidMethodId;
  for (MethodId M = 0; M != W.Prog.numMethods(); ++M) {
    const Method &Meth = W.Prog.method(M);
    if (Meth.Name == "compare" && Meth.IsAbstract)
      Compare = M;
  }
  ASSERT_NE(Compare, InvalidMethodId);
  EXPECT_EQ(CH.implementations(Compare).size(), 4u);
}

TEST(WorkloadShapeTest, ScaleControlsRunLength) {
  WorkloadParams Small = tinyParams();
  WorkloadParams Big = tinyParams();
  Big.Scale = 0.08;
  auto CyclesFor = [](const WorkloadParams &P) {
    Workload W = makeWorkload("compress", P);
    VirtualMachine VM(W.Prog);
    for (MethodId Entry : W.Entries)
      VM.addThread(Entry);
    VM.run();
    return VM.cycles();
  };
  EXPECT_GT(CyclesFor(Big), CyclesFor(Small) * 2);
}

//===----------------------------------------------------------------------===//
// Cold library
//===----------------------------------------------------------------------===//

TEST(ColdLibraryTest, GeneratesRequestedShape) {
  ProgramBuilder B;
  Rng R(3);
  ColdLibrarySpec Spec;
  Spec.NumClasses = 5;
  Spec.MethodsPerClass = 4;
  MethodId Init = addColdLibrary(B, R, Spec, "Lib");
  MethodId Main =
      B.declareMethod(B.program().method(Init).Owner, "main",
                      MethodKind::Static, 0, false);
  {
    CodeEmitter E = B.code(Main);
    E.invokeStatic(Init).ret();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();
  EXPECT_EQ(P.numClasses(), 5u);
  // 5 classes x (4 methods + driver) + init + main.
  EXPECT_EQ(P.numMethods(), 5u * 5u + 2u);
  EXPECT_TRUE(verifyProgram(P).empty());

  // Running it executes every generated method exactly once.
  VirtualMachine VM(P);
  VM.addThread(Main);
  VM.run();
  EXPECT_EQ(VM.codeManager().numCompiles(OptLevel::Baseline),
            P.numMethods());
}

TEST(ColdLibraryTest, DeterministicForEqualSeeds) {
  auto build = [] {
    ProgramBuilder B;
    Rng R(99);
    addColdLibrary(B, R, ColdLibrarySpec{8, 6, 24, 0.5, 0.25}, "X");
    return B.program().totalBytecodes();
  };
  EXPECT_EQ(build(), build());
}
