//===- tests/DeterminismTest.cpp - Differential determinism tests ----------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The harness's load-bearing guarantee: a run is a pure function of its
// RunConfig, and a parallel sweep is byte-for-byte the serial sweep.
// Without this, any speedup/code-size conclusion could be an artifact
// of harness scheduling rather than of inlining policy (the "misleading
// microbenchmarks" failure mode).
//
//===----------------------------------------------------------------------===//

#include "harness/CsvExport.h"
#include "harness/Experiment.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace aoci;

namespace {

/// Field-by-field equality of everything a RunResult measures.
void expectIdenticalResults(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.WorkloadName, B.WorkloadName);
  EXPECT_EQ(A.Policy, B.Policy);
  EXPECT_EQ(A.MaxDepth, B.MaxDepth);
  EXPECT_EQ(A.WallCycles, B.WallCycles);
  EXPECT_EQ(A.OptBytesGenerated, B.OptBytesGenerated);
  EXPECT_EQ(A.OptBytesResident, B.OptBytesResident);
  EXPECT_EQ(A.OptCompileCycles, B.OptCompileCycles);
  EXPECT_EQ(A.BaselineCompileCycles, B.BaselineCompileCycles);
  for (unsigned C = 0; C != NumAosComponents; ++C)
    EXPECT_EQ(A.ComponentCycles[C], B.ComponentCycles[C])
        << "component " << C;
  EXPECT_EQ(A.GcCycles, B.GcCycles);
  EXPECT_EQ(A.OptCompilations, B.OptCompilations);
  EXPECT_EQ(A.GuardTests, B.GuardTests);
  EXPECT_EQ(A.GuardFallbacks, B.GuardFallbacks);
  EXPECT_EQ(A.InlinedCalls, B.InlinedCalls);
  EXPECT_EQ(A.SamplesTaken, B.SamplesTaken);
  EXPECT_EQ(A.ProgramResult, B.ProgramResult);
  EXPECT_EQ(A.ClassesLoaded, B.ClassesLoaded);
  EXPECT_EQ(A.MethodsCompiled, B.MethodsCompiled);
  EXPECT_EQ(A.BytecodesCompiled, B.BytecodesCompiled);
}

/// The reduced benchmark x policy x depth matrix the differential
/// sweeps use: small enough for TSan, large enough to exercise several
/// workloads, policies, and depths.
GridConfig reducedGrid() {
  GridConfig Config;
  Config.Workloads = {"compress", "jack"};
  Config.Policies = {PolicyKind::Fixed, PolicyKind::Parameterless};
  Config.Depths = {2, 4};
  Config.Params.Scale = 0.1;
  return Config;
}

void expectIdenticalGrids(const GridResults &Serial,
                          const GridResults &Parallel,
                          const GridConfig &Config) {
  ASSERT_EQ(Serial.workloads(), Parallel.workloads());
  for (const std::string &W : Config.Workloads) {
    expectIdenticalResults(Serial.baseline(W), Parallel.baseline(W));
    for (PolicyKind Policy : Config.Policies)
      for (unsigned D : Config.Depths)
        expectIdenticalResults(Serial.cell(W, Policy, D),
                               Parallel.cell(W, Policy, D));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// (a) One config, run twice: bit-identical results.
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, SameConfigTwiceIsBitIdentical) {
  RunConfig Config;
  Config.WorkloadName = "jess";
  Config.Policy = PolicyKind::HybridParamClass;
  Config.MaxDepth = 3;
  Config.Params.Scale = 0.15;
  RunResult A = runExperiment(Config);
  RunResult B = runExperiment(Config);
  expectIdenticalResults(A, B);
}

TEST(DeterminismTest, BestOfTrialsIsBitIdenticalAcrossInvocations) {
  RunConfig Config;
  Config.WorkloadName = "db";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 2;
  Config.Params.Scale = 0.1;
  RunResult A = runBestOf(Config, 3);
  RunResult B = runBestOf(Config, 3);
  expectIdenticalResults(A, B);
}

//===----------------------------------------------------------------------===//
// Per-run seed derivation: a pure function of the config.
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, TrialZeroKeepsTheConfiguredSeed) {
  RunConfig Config;
  Config.Model.SampleJitterSeed = 12345;
  EXPECT_EQ(deriveRunSeed(Config, 0), 12345u);
}

TEST(DeterminismTest, DerivedSeedsDependOnConfigNotOnAnythingElse) {
  RunConfig Config;
  Config.WorkloadName = "compress";
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  // Pure function: same inputs, same seed, every time.
  EXPECT_EQ(deriveRunSeed(Config, 1), deriveRunSeed(Config, 1));
  EXPECT_EQ(deriveRunSeed(Config, 7), deriveRunSeed(Config, 7));
  // Each identifying field perturbs the seed.
  uint64_t Base = deriveRunSeed(Config, 1);
  RunConfig Other = Config;
  Other.WorkloadName = "jess";
  EXPECT_NE(deriveRunSeed(Other, 1), Base);
  Other = Config;
  Other.Policy = PolicyKind::LargeMethods;
  EXPECT_NE(deriveRunSeed(Other, 1), Base);
  Other = Config;
  Other.MaxDepth = 4;
  EXPECT_NE(deriveRunSeed(Other, 1), Base);
  Other = Config;
  Other.Params.Seed = 99;
  EXPECT_NE(deriveRunSeed(Other, 1), Base);
  EXPECT_NE(deriveRunSeed(Config, 2), Base);
}

//===----------------------------------------------------------------------===//
// (b) Parallel vs serial grid: identical results and CSV bytes.
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, ParallelGridMatchesSerialGrid) {
  GridConfig Config = reducedGrid();
  GridResults Serial = runGrid(Config);
  GridResults Parallel = runGridParallel(Config, 4);
  expectIdenticalGrids(Serial, Parallel, Config);

  std::string SerialCsv =
      exportCsv(Serial, Config.Policies, Config.Depths);
  std::string ParallelCsv =
      exportCsv(Parallel, Config.Policies, Config.Depths);
  EXPECT_EQ(SerialCsv, ParallelCsv)
      << "the parallel grid must be byte-identical to the serial grid";
}

TEST(DeterminismTest, ParallelGridIsIndependentOfJobCount) {
  GridConfig Config = reducedGrid();
  Config.Workloads = {"compress"};
  GridResults One = runGridParallel(Config, 1);
  GridResults Three = runGridParallel(Config, 3);
  expectIdenticalGrids(One, Three, Config);
  EXPECT_EQ(exportCsv(One, Config.Policies, Config.Depths),
            exportCsv(Three, Config.Policies, Config.Depths));
}

TEST(DeterminismTest, ParallelGridWithTrialsMatchesSerial) {
  GridConfig Config = reducedGrid();
  Config.Workloads = {"jack"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {3};
  Config.Trials = 3;
  GridResults Serial = runGrid(Config);
  GridResults Parallel = runGridParallel(Config, 4);
  expectIdenticalGrids(Serial, Parallel, Config);
}

//===----------------------------------------------------------------------===//
// RunMetrics bookkeeping (host-side record, outside the determinism
// envelope — only its config-derived identity columns are checked).
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, MetricsCoverEveryRunInGridOrder) {
  GridConfig Config = reducedGrid();
  GridResults Parallel = runGridParallel(Config, 4);
  size_t RunsPerWorkload = 1 + Config.Policies.size() * Config.Depths.size();
  ASSERT_EQ(Parallel.metrics().size(),
            Config.Workloads.size() * RunsPerWorkload);
  size_t I = 0;
  for (const std::string &W : Config.Workloads) {
    const RunMetrics &Base = Parallel.metrics()[I++];
    EXPECT_EQ(Base.WorkloadName, W);
    EXPECT_TRUE(Base.IsBaseline);
    EXPECT_EQ(Base.RunCycles, Parallel.baseline(W).WallCycles);
    for (PolicyKind Policy : Config.Policies) {
      for (unsigned D : Config.Depths) {
        const RunMetrics &M = Parallel.metrics()[I++];
        EXPECT_EQ(M.WorkloadName, W);
        EXPECT_FALSE(M.IsBaseline);
        EXPECT_EQ(M.Policy, Policy);
        EXPECT_EQ(M.MaxDepth, D);
        EXPECT_EQ(M.RunCycles, Parallel.cell(W, Policy, D).WallCycles);
      }
    }
  }
  std::string MetricsCsv = exportMetricsCsv(Parallel);
  EXPECT_EQ(static_cast<size_t>(
                std::count(MetricsCsv.begin(), MetricsCsv.end(), '\n')),
            Parallel.metrics().size() + 1);
}
