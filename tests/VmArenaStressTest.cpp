//===- tests/VmArenaStressTest.cpp - Frame-arena stress tests --------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress tests for the per-thread value slab / frame arena: deep recursion
/// up to the configured frame limit, the release-mode recursion diagnostic,
/// slab reuse across call/return waves, guarded-inline fallback paths, and
/// multi-thread round-robin scheduling with independent slabs.
///
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

using namespace aoci;

namespace {

/// Builds: main() { return rec(N); }  rec(n) { return n == 0 ? 0 : n +
/// rec(n - 1); } — recursion depth N + 1 frames above main.
Program recursionProgram(int64_t N) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Rec = B.declareMethod(C, "rec", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(Rec);
    auto Base = E.newLabel();
    E.load(0).ifZero(Base);
    E.load(0).load(0).iconst(1).isub().invokeStatic(Rec).iadd().vreturn();
    E.bind(Base);
    E.iconst(0).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    E.iconst(N).invokeStatic(Rec).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

/// Builds: main() { s = 0; repeat Waves times: s += wave(Depth); return s; }
/// wave(d) { return d == 0 ? 1 : wave(d - 1) + 1; } — every wave climbs to
/// Depth frames and unwinds fully, so the slab's high-water mark is one
/// wave, not Waves of them.
Program waveProgram(int64_t Waves, int64_t Depth) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Wave = B.declareMethod(C, "wave", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(Wave);
    auto Base = E.newLabel();
    E.load(0).ifZero(Base);
    E.load(0).iconst(1).isub().invokeStatic(Wave).iconst(1).iadd().vreturn();
    E.bind(Base);
    E.iconst(1).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    E.iconst(Waves).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.iconst(Depth).invokeStatic(Wave).load(1).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

} // namespace

//===----------------------------------------------------------------------===//
// Recursion depth: near-limit success and over-limit diagnostic
//===----------------------------------------------------------------------===//

TEST(VmArenaStressTest, DeepRecursionRunsNearTheFrameLimit) {
  const int64_t N = 4000; // main + 4001 rec frames, under the 4096 default.
  Program P = recursionProgram(N);
  VirtualMachine VM(P);
  unsigned T = VM.addThread(P.entryMethod());
  VM.run();
  ASSERT_TRUE(VM.threads()[T]->Finished);
  EXPECT_EQ(VM.threads()[T]->Result.asInt(), N * (N + 1) / 2);
  EXPECT_EQ(VM.threads()[T]->SlabTop, 0u) << "full unwind frees the slab";
}

TEST(VmArenaStressTest, RecursionPastTheLimitThrowsWithDiagnostic) {
  Program P = recursionProgram(500);
  CostModel Model;
  Model.MaxFrameDepth = 64;
  VirtualMachine VM(P, Model);
  VM.addThread(P.entryMethod());
  try {
    VM.run();
    FAIL() << "expected the frame-depth check to throw";
  } catch (const std::runtime_error &E) {
    const std::string Msg = E.what();
    EXPECT_NE(Msg.find("Main.rec"), std::string::npos) << Msg;
    EXPECT_NE(Msg.find("MaxFrameDepth"), std::string::npos) << Msg;
    EXPECT_NE(Msg.find("64"), std::string::npos) << Msg;
  }
}

//===----------------------------------------------------------------------===//
// Slab reuse across call/return waves
//===----------------------------------------------------------------------===//

TEST(VmArenaStressTest, CallReturnWavesReuseTheSlab) {
  const int64_t Waves = 200, Depth = 100;
  Program P = waveProgram(Waves, Depth);
  VirtualMachine VM(P);
  unsigned T = VM.addThread(P.entryMethod());
  VM.run();
  const ThreadState &TS = *VM.threads()[T];
  ASSERT_TRUE(TS.Finished);
  EXPECT_EQ(TS.Result.asInt(), Waves * (Depth + 1));
  // The slab grows geometrically to one wave's footprint and is then
  // reused: wave frames need at most a handful of slots each, so 200
  // unwound waves must not have accumulated storage.
  EXPECT_LT(TS.Slab.size(), static_cast<size_t>(Depth) * 16)
      << "slab kept growing instead of reusing freed frames";
  EXPECT_EQ(TS.SlabTop, 0u);
}

//===----------------------------------------------------------------------===//
// Guarded-inline fallback through the arena
//===----------------------------------------------------------------------===//

TEST(VmArenaStressTest, GuardFallbackUnwindsLikePhysicalCalls) {
  // Virtual call alternating two receiver classes; only one target is
  // inlined (guarded), so half the calls take the inlined-frame path and
  // half fall back to a physical frame — both must leave the slab balanced.
  ProgramBuilder B;
  ClassId A = B.addClass("A");
  MethodId F = B.declareMethod(A, "f", MethodKind::Virtual, 0, true);
  {
    CodeEmitter E = B.code(F);
    E.iconst(1).vreturn();
    E.finish();
  }
  ClassId C = B.addClass("C", A);
  MethodId CF = B.addOverride(C, F);
  {
    CodeEmitter E = B.code(CF);
    E.iconst(2).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(A, "main", MethodKind::Static, 0, true);
  BytecodeIndex CallSite;
  {
    CodeEmitter E = B.code(Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    auto UseA = E.newLabel();
    auto Dispatch = E.newLabel();
    E.iconst(2000).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.load(0).iconst(2).irem().ifZero(UseA);
    E.newObject(C).jump(Dispatch);
    E.bind(UseA);
    E.newObject(A);
    E.bind(Dispatch);
    CallSite = E.nextIndex();
    E.invokeVirtual(F);
    E.load(1).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();

  VirtualMachine VM(P);
  InlinePlan Plan;
  InlineCase Case;
  Case.Callee = CF;
  Case.Guarded = true;
  Case.BodyUnits = P.method(CF).machineSize();
  Plan.Root.getOrCreate(CallSite).Cases.push_back(std::move(Case));
  Plan.recountStatistics();
  auto V = std::make_unique<CodeVariant>();
  V->M = Main;
  V->Level = OptLevel::Opt2;
  V->MachineUnits = P.method(Main).machineSize() + Plan.TotalUnits;
  V->Plan = std::move(Plan);
  VM.codeManager().install(std::move(V));

  unsigned T = VM.addThread(P.entryMethod());
  VM.run();
  const ThreadState &TS = *VM.threads()[T];
  ASSERT_TRUE(TS.Finished);
  EXPECT_EQ(TS.Result.asInt(), 1000 * 2 + 1000 * 1);
  EXPECT_EQ(VM.counters().InlinedCallsEntered, 1000u);
  EXPECT_EQ(VM.counters().GuardFallbacks, 1000u);
  EXPECT_EQ(TS.SlabTop, 0u);
}

//===----------------------------------------------------------------------===//
// Multi-thread round-robin with independent slabs
//===----------------------------------------------------------------------===//

TEST(VmArenaStressTest, RoundRobinThreadsKeepSlabsIndependent) {
  const int64_t N = 300;
  Program P = recursionProgram(N);
  // A small quantum forces many mid-recursion thread switches, so each
  // thread's slab repeatedly suspends at a different depth.
  CostModel Model;
  Model.ThreadQuantumCycles = 50;
  VirtualMachine VM(P, Model);
  unsigned T0 = VM.addThread(P.entryMethod());
  unsigned T1 = VM.addThread(P.entryMethod());
  unsigned T2 = VM.addThread(P.entryMethod());
  VM.run();
  for (unsigned T : {T0, T1, T2}) {
    ASSERT_TRUE(VM.threads()[T]->Finished) << "thread " << T;
    EXPECT_EQ(VM.threads()[T]->Result.asInt(), N * (N + 1) / 2)
        << "thread " << T;
    EXPECT_EQ(VM.threads()[T]->SlabTop, 0u) << "thread " << T;
  }
}
