//===- tests/VmUnitTest.cpp - Small-unit tests for src/vm -------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "opt/PlanPrinter.h"
#include "vm/CodeManager.h"
#include "vm/Heap.h"
#include "vm/Overhead.h"
#include "vm/Value.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

using namespace aoci;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, KindsAndAccessors) {
  Value I = Value::makeInt(-7);
  Value R = Value::makeRef(42);
  Value N = Value::makeNull();
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), -7);
  EXPECT_TRUE(R.isRef());
  EXPECT_EQ(R.asRef(), 42u);
  EXPECT_TRUE(N.isNull());
  EXPECT_TRUE(Value().isInt()) << "default value is integer zero";
  EXPECT_EQ(Value().asInt(), 0);
}

TEST(ValueTest, EqualityIsKindAndBits) {
  EXPECT_TRUE(Value::makeInt(5).equals(Value::makeInt(5)));
  EXPECT_FALSE(Value::makeInt(5).equals(Value::makeInt(6)));
  EXPECT_TRUE(Value::makeRef(3).equals(Value::makeRef(3)));
  EXPECT_FALSE(Value::makeRef(3).equals(Value::makeInt(3)))
      << "a reference never equals an integer";
  EXPECT_TRUE(Value::makeNull().equals(Value::makeNull()));
  EXPECT_FALSE(Value::makeNull().equals(Value::makeInt(0)));
}

//===----------------------------------------------------------------------===//
// Heap
//===----------------------------------------------------------------------===//

TEST(HeapTest, ObjectsAndArrays) {
  Heap H;
  ObjectRef O = H.allocateObject(3, 2);
  ObjectRef A = H.allocateArray(5);
  EXPECT_EQ(H.numObjects(), 2u);
  EXPECT_EQ(H.object(O).Klass, 3u);
  EXPECT_FALSE(H.object(O).IsArray);
  EXPECT_EQ(H.object(O).Slots.size(), 2u);
  EXPECT_TRUE(H.object(A).IsArray);
  EXPECT_EQ(H.object(A).Slots.size(), 5u);
  // Slots default to integer zero.
  EXPECT_TRUE(H.object(A).Slots[4].isInt());
}

TEST(HeapTest, AllocationMeterAndCollection) {
  Heap H;
  EXPECT_EQ(H.bytesSinceGc(), 0u);
  H.allocateObject(0, 4); // 16 + 32 bytes
  EXPECT_EQ(H.bytesSinceGc(), 48u);
  EXPECT_EQ(H.totalBytesAllocated(), 48u);
  H.noteCollection();
  EXPECT_EQ(H.bytesSinceGc(), 0u);
  EXPECT_EQ(H.totalBytesAllocated(), 48u) << "total is never reset";
}

//===----------------------------------------------------------------------===//
// OverheadMeter
//===----------------------------------------------------------------------===//

TEST(OverheadMeterTest, ChargesPerComponent) {
  OverheadMeter M;
  M.charge(AosComponent::Listeners, 10);
  M.charge(AosComponent::Compilation, 100);
  M.charge(AosComponent::Listeners, 5);
  EXPECT_EQ(M.cycles(AosComponent::Listeners), 15u);
  EXPECT_EQ(M.cycles(AosComponent::Compilation), 100u);
  EXPECT_EQ(M.cycles(AosComponent::Controller), 0u);
  EXPECT_EQ(M.total(), 115u);
}

TEST(OverheadMeterTest, ComponentNamesMatchFigureSix) {
  EXPECT_STREQ(aosComponentName(AosComponent::Listeners), "AOS Listeners");
  EXPECT_STREQ(aosComponentName(AosComponent::Compilation),
               "CompilationThread");
  EXPECT_STREQ(aosComponentName(AosComponent::DecayOrganizer),
               "DecayOrganizer");
  EXPECT_STREQ(aosComponentName(AosComponent::AiOrganizer), "AIOrganizer");
  EXPECT_STREQ(aosComponentName(AosComponent::MethodOrganizer),
               "MethodSampleOrganizer");
  EXPECT_STREQ(aosComponentName(AosComponent::Controller),
               "ControllerThread");
}

//===----------------------------------------------------------------------===//
// CodeManager
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<CodeVariant> variant(MethodId M, OptLevel Level,
                                     uint64_t Bytes, uint64_t Compile) {
  auto V = std::make_unique<CodeVariant>();
  V->M = M;
  V->Level = Level;
  V->CodeBytes = Bytes;
  V->CompileCycles = Compile;
  return V;
}

} // namespace

TEST(CodeManagerTest, InstallTracksCurrentAndSerials) {
  FigureOneProgram F = makeFigureOne(1);
  CodeManager CM(F.P);
  EXPECT_EQ(CM.current(2), nullptr);
  const CodeVariant *V0 = CM.install(variant(2, OptLevel::Baseline, 100, 10));
  EXPECT_EQ(CM.current(2), V0);
  EXPECT_EQ(V0->SerialNumber, 0u);
  const CodeVariant *V1 = CM.install(variant(2, OptLevel::Opt1, 200, 50));
  EXPECT_EQ(CM.current(2), V1);
  EXPECT_EQ(V1->SerialNumber, 1u);
  EXPECT_EQ(CM.allVariants().size(), 2u);
  EXPECT_EQ(CM.current(3), nullptr);
}

TEST(CodeManagerTest, LedgersSeparateBaselineFromOpt) {
  FigureOneProgram F = makeFigureOne(1);
  CodeManager CM(F.P);
  CM.install(variant(0, OptLevel::Baseline, 100, 10));
  CM.install(variant(1, OptLevel::Opt1, 200, 50));
  CM.install(variant(1, OptLevel::Opt2, 300, 70));
  EXPECT_EQ(CM.baselineCompileCycles(), 10u);
  EXPECT_EQ(CM.optCompileCycles(), 120u);
  EXPECT_EQ(CM.optimizedBytesGenerated(), 500u)
      << "cumulative includes the obsoleted opt1 variant";
  EXPECT_EQ(CM.optimizedBytesResident(), 300u)
      << "resident counts only the installed opt variant";
  EXPECT_EQ(CM.numCompiles(OptLevel::Baseline), 1u);
  EXPECT_EQ(CM.numCompiles(OptLevel::Opt1), 1u);
  EXPECT_EQ(CM.numCompiles(OptLevel::Opt2), 1u);
}

TEST(CodeManagerTest, OldVariantsStayAliveAfterReplacement) {
  FigureOneProgram F = makeFigureOne(1);
  CodeManager CM(F.P);
  const CodeVariant *Old = CM.install(variant(0, OptLevel::Opt1, 100, 10));
  CM.install(variant(0, OptLevel::Opt2, 200, 20));
  // Running activations keep raw pointers into replaced variants.
  EXPECT_EQ(Old->CodeBytes, 100u);
  EXPECT_NE(CM.current(0), Old);
}

//===----------------------------------------------------------------------===//
// InlineNode / PlanPrinter
//===----------------------------------------------------------------------===//

TEST(InlineNodeTest, FindAndGetOrCreateKeepSitesSorted) {
  InlineNode Node;
  Node.getOrCreate(9);
  Node.getOrCreate(2);
  Node.getOrCreate(5);
  EXPECT_EQ(&Node.getOrCreate(5), Node.find(5));
  EXPECT_EQ(Node.find(3), nullptr);
  ASSERT_EQ(Node.Sites.size(), 3u);
  EXPECT_LT(Node.Sites[0].Site, Node.Sites[1].Site);
  EXPECT_LT(Node.Sites[1].Site, Node.Sites[2].Site);
}

TEST(PlanPrinterTest, RendersGuardsAndNesting) {
  FigureOneProgram F = makeFigureOne(1);
  CodeVariant V;
  V.M = F.RunTest;
  V.Level = OptLevel::Opt2;
  V.CodeBytes = 1234;
  InlineCase GetCase;
  GetCase.Callee = F.Get;
  GetCase.Guarded = true;
  GetCase.BodyUnits = 54;
  GetCase.Body = std::make_unique<InlineNode>();
  InlineCase HashCase;
  HashCase.Callee = F.MyKeyHashCode;
  HashCase.BodyUnits = 4;
  GetCase.Body->getOrCreate(F.HashCodeSite)
      .Cases.push_back(std::move(HashCase));
  V.Plan.Root.getOrCreate(F.GetSite1).Cases.push_back(std::move(GetCase));
  V.Plan.recountStatistics();

  std::string Out = describeVariant(F.P, V);
  EXPECT_NE(Out.find("HashMapTest.runTest"), std::string::npos);
  EXPECT_NE(Out.find("opt2"), std::string::npos);
  EXPECT_NE(Out.find("1234 bytes"), std::string::npos);
  EXPECT_NE(Out.find("guard HashMap.get"), std::string::npos);
  EXPECT_NE(Out.find("MyKey.hashCode"), std::string::npos);
  // Nesting: the hashCode line is indented deeper than the get line.
  size_t GetPos = Out.find("guard HashMap.get");
  size_t HashPos = Out.find("MyKey.hashCode");
  EXPECT_LT(GetPos, HashPos);
}
