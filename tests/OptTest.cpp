//===- tests/OptTest.cpp - Unit tests for src/opt ---------------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "opt/Compiler.h"
#include "opt/InliningOracle.h"
#include "opt/SizeEstimator.h"
#include "bytecode/ProgramBuilder.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"

#include <gtest/gtest.h>

using namespace aoci;

namespace {

InliningRule rule(std::vector<ContextPair> Ctx, MethodId Callee,
                  double Weight, uint64_t At = 0) {
  InliningRule R;
  R.T.Context = std::move(Ctx);
  R.T.Callee = Callee;
  R.Weight = Weight;
  R.CreatedAtCycle = At;
  return R;
}

/// Finds the case list the plan stores for (Site), or nullptr.
const InlineNode::SiteDecision *planAt(const CodeVariant &V,
                                       BytecodeIndex Site) {
  return V.Plan.Root.find(Site);
}

bool planInlines(const CodeVariant &V, BytecodeIndex Site, MethodId Callee) {
  const auto *D = planAt(V, Site);
  if (!D)
    return false;
  for (const InlineCase &Case : D->Cases)
    if (Case.Callee == Callee)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// SizeEstimator
//===----------------------------------------------------------------------===//

TEST(SizeEstimatorTest, ConstantArgsShrinkEstimate) {
  FigureOneProgram F = makeFigureOne(1);
  unsigned Plain = inlinedSizeEstimate(F.P, F.Get, 0);
  unsigned OneConst = inlinedSizeEstimate(F.P, F.Get, 0b1);
  EXPECT_LT(OneConst, Plain);
  EXPECT_GE(static_cast<double>(OneConst),
            static_cast<double>(Plain) * MinSizeFraction - 1);
}

TEST(SizeEstimatorTest, FloorBoundsReduction) {
  FigureOneProgram F = makeFigureOne(1);
  // A method with many "constant" args cannot shrink below the floor.
  unsigned Floor = inlinedSizeEstimate(F.P, F.Put, 0b11);
  EXPECT_GE(static_cast<double>(Floor),
            static_cast<double>(F.P.method(F.Put).machineSize()) *
                MinSizeFraction -
                1);
}

TEST(SizeEstimatorTest, FigureOneSizeClasses) {
  FigureOneProgram F = makeFigureOne(1);
  EXPECT_EQ(classifyMethod(F.P.method(F.ObjHashCode)), SizeClass::Tiny);
  EXPECT_EQ(classifyMethod(F.P.method(F.MyKeyHashCode)), SizeClass::Tiny);
  EXPECT_EQ(classifyMethod(F.P.method(F.IntValue)), SizeClass::Tiny);
  SizeClass GetClass = classifyMethod(F.P.method(F.Get));
  EXPECT_TRUE(GetClass == SizeClass::Small || GetClass == SizeClass::Medium)
      << "get must be inlinable (not large)";
}

//===----------------------------------------------------------------------===//
// Static heuristics
//===----------------------------------------------------------------------===//

namespace {

OracleQuery queryFor(const Program &P, MethodId Enclosing,
                     BytecodeIndex Site,
                     std::vector<ContextPair> ExtraContext = {}) {
  OracleQuery Q;
  Q.Enclosing = Enclosing;
  Q.Site = Site;
  Q.Call = P.method(Enclosing).Body[Site];
  Q.CompilationContext.push_back(ContextPair{Enclosing, Site});
  for (const ContextPair &C : ExtraContext)
    Q.CompilationContext.push_back(C);
  Q.Depth = ExtraContext.size() ? 1 : 0;
  return Q;
}

} // namespace

TEST(StaticOracleTest, PolymorphicSiteNotStaticallyBound) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  StaticOracle Oracle(F.P, CH);
  // hashCode has two implementations: no static decision.
  auto D = Oracle.decide(queryFor(F.P, F.Get, F.HashCodeSite));
  EXPECT_TRUE(D.empty());
}

TEST(StaticOracleTest, FinalTinyMethodInlinedWithoutGuard) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  StaticOracle Oracle(F.P, CH);
  // Find the intValue call site in runTest (first invoke of IntValue).
  const Method &RunTest = F.P.method(F.RunTest);
  BytecodeIndex IntValueSite = 0;
  for (BytecodeIndex S : RunTest.callSites())
    if (static_cast<MethodId>(RunTest.Body[S].Operand) == F.IntValue) {
      IntValueSite = S;
      break;
    }
  auto D = Oracle.decide(queryFor(F.P, F.RunTest, IntValueSite));
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D.front().Callee, F.IntValue);
  EXPECT_FALSE(D.front().NeedsGuard) << "final + CHA-mono: no guard";
  EXPECT_FALSE(D.front().ProfileDirected);
}

TEST(StaticOracleTest, MonomorphicNonFinalNeedsGuard) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  StaticOracle Oracle(F.P, CH);
  // MyKey.equals is polymorphic (Object.equals exists) -> nothing.
  // HashMap.put is CHA-monomorphic but not final; it is small/medium.
  const Method &Main = F.P.method(F.Main);
  BytecodeIndex PutSite = 0;
  for (BytecodeIndex S : Main.callSites())
    if (static_cast<MethodId>(Main.Body[S].Operand) == F.Put) {
      PutSite = S;
      break;
    }
  auto D = Oracle.decide(queryFor(F.P, F.Main, PutSite));
  if (classifyMethod(F.P.method(F.Put)) == SizeClass::Medium) {
    EXPECT_TRUE(D.empty()) << "medium methods need profile data";
  } else {
    ASSERT_EQ(D.size(), 1u);
    EXPECT_TRUE(D.front().NeedsGuard);
  }
}

//===----------------------------------------------------------------------===//
// ProfileDirectedOracle: the Figure 2 scenarios
//===----------------------------------------------------------------------===//

namespace {

/// Rule sets mirroring Figure 2b (context-insensitive) and Figure 2c
/// (context-sensitive) for the hashCode site inside HashMap.get.
struct FigureTwoFixture {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH{F.P};
  InlineRuleSet CinsRules, CtxRules;

  FigureTwoFixture() {
    // Figure 2b: one call edge, 50/50 between the two targets.
    CinsRules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode, 50));
    CinsRules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjHashCode, 50));
    // Figure 2c: two contexts, each monomorphic.
    CtxRules.add(rule({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}},
                      F.MyKeyHashCode, 50));
    CtxRules.add(rule({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
                      F.ObjHashCode, 50));
    // Both rule sets also know the runTest->get edges are hot.
    for (InlineRuleSet *RS : {&CinsRules, &CtxRules}) {
      RS->add(rule({{F.RunTest, F.GetSite1}}, F.Get, 60));
      RS->add(rule({{F.RunTest, F.GetSite2}}, F.Get, 60));
    }
  }
};

} // namespace

TEST(ProfileOracleTest, CinsInlinesBothHashCodesEverywhere) {
  FigureTwoFixture Fx;
  ProfileDirectedOracle Oracle(Fx.F.P, Fx.CH, Fx.CinsRules);
  // Compiling get standalone: both targets are 50% -> both inlined.
  auto D = Oracle.decide(
      queryFor(Fx.F.P, Fx.F.Get, Fx.F.HashCodeSite));
  ASSERT_EQ(D.size(), 2u);
  EXPECT_TRUE(D[0].NeedsGuard);
  EXPECT_TRUE(D[1].NeedsGuard);
  // Inside get inlined into runTest at cs1: the context-insensitive rule
  // still matches, still both targets.
  auto D2 = Oracle.decide(
      queryFor(Fx.F.P, Fx.F.Get, Fx.F.HashCodeSite,
               {{Fx.F.RunTest, Fx.F.GetSite1}}));
  EXPECT_EQ(D2.size(), 2u);
}

TEST(ProfileOracleTest, ContextRulesSelectSingleTargetPerContext) {
  FigureTwoFixture Fx;
  ProfileDirectedOracle Oracle(Fx.F.P, Fx.CH, Fx.CtxRules);
  // Inside get inlined into runTest at cs1: only MyKey.hashCode.
  auto D1 = Oracle.decide(
      queryFor(Fx.F.P, Fx.F.Get, Fx.F.HashCodeSite,
               {{Fx.F.RunTest, Fx.F.GetSite1}}));
  ASSERT_EQ(D1.size(), 1u);
  EXPECT_EQ(D1.front().Callee, Fx.F.MyKeyHashCode);
  // At cs2: only Object.hashCode.
  auto D2 = Oracle.decide(
      queryFor(Fx.F.P, Fx.F.Get, Fx.F.HashCodeSite,
               {{Fx.F.RunTest, Fx.F.GetSite2}}));
  ASSERT_EQ(D2.size(), 1u);
  EXPECT_EQ(D2.front().Callee, Fx.F.ObjHashCode);
}

TEST(ProfileOracleTest, EmptyIntersectionInlinesNothing) {
  // Compiling get standalone under context-sensitive rules: the two
  // context groups want different targets, so the intersection is empty
  // ("a good candidate only if hot in ALL applicable contexts").
  FigureTwoFixture Fx;
  ProfileDirectedOracle Oracle(Fx.F.P, Fx.CH, Fx.CtxRules);
  auto D = Oracle.decide(
      queryFor(Fx.F.P, Fx.F.Get, Fx.F.HashCodeSite));
  EXPECT_TRUE(D.empty());
}

TEST(ProfileOracleTest, LowShareTargetsRefusedAsTooPolymorphic) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  InlineRuleSet Rules;
  // Four-way split, each 25% (< default MinTargetShare 0.30): inline
  // nothing. Reuse the two hashCode impls twice with fudged weights.
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode, 25));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjHashCode, 25));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyEquals, 25));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjEquals, 25));
  ProfileDirectedOracle Oracle(F.P, CH, Rules);
  auto D = Oracle.decide(queryFor(F.P, F.Get, F.HashCodeSite));
  EXPECT_TRUE(D.empty());
}

TEST(ProfileOracleTest, GuardOrderIsHottestFirst) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  InlineRuleSet Rules;
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode, 45));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjHashCode, 55));
  ProfileDirectedOracle Oracle(F.P, CH, Rules);
  auto D = Oracle.decide(queryFor(F.P, F.Get, F.HashCodeSite));
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D[0].Callee, F.ObjHashCode) << "hotter target guards first";
}

TEST(ProfileOracleTest, MinorityTargetDroppedBelowShareFloor) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  InlineRuleSet Rules;
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode, 30));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjHashCode, 70));
  ProfileDirectedOracle Oracle(F.P, CH, Rules);
  auto D = Oracle.decide(queryFor(F.P, F.Get, F.HashCodeSite));
  ASSERT_EQ(D.size(), 1u) << "30% share is below the 0.40 floor";
  EXPECT_EQ(D[0].Callee, F.ObjHashCode);
}

TEST(ProfileOracleTest, MaxGuardedTargetsCaps) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  InlineRuleSet Rules;
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyHashCode, 40));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.ObjHashCode, 35));
  Rules.add(rule({{F.Get, F.HashCodeSite}}, F.MyKeyEquals, 30));
  InlinerConfig Config;
  Config.MinTargetShare = 0.1;
  ProfileDirectedOracle Oracle(F.P, CH, Rules, Config);
  auto D = Oracle.decide(queryFor(F.P, F.Get, F.HashCodeSite));
  EXPECT_EQ(D.size(), 2u);
}

//===----------------------------------------------------------------------===//
// OptimizingCompiler
//===----------------------------------------------------------------------===//

TEST(CompilerTest, StaticOracleInlinesTinyCalls) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);
  StaticOracle Oracle(F.P, CH);
  auto V = Compiler.compile(F.RunTest, OptLevel::Opt2, Oracle);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Level, OptLevel::Opt2);
  // runTest's intValue calls are tiny+final: inlined without guards.
  EXPECT_GE(V->Plan.NumInlineBodies, 2u);
  EXPECT_EQ(V->Plan.NumGuards, 0u);
  EXPECT_GT(V->MachineUnits, F.P.method(F.RunTest).machineSize())
      << "inlined bodies add units";
  EXPECT_EQ(V->CodeBytes, Model.codeBytes(OptLevel::Opt2, V->MachineUnits));
}

TEST(CompilerTest, ContextSensitivePlanIsSmallerThanCins) {
  // Compile runTest under Figure 2b vs Figure 2c rules. The cins plan
  // inlines both hashCode targets inside each inlined copy of get; the
  // context-sensitive plan inlines exactly one per copy.
  FigureTwoFixture Fx;
  CostModel Model;
  OptimizingCompiler Compiler(Fx.F.P, Fx.CH, Model);

  ProfileDirectedOracle CinsOracle(Fx.F.P, Fx.CH, Fx.CinsRules);
  ProfileDirectedOracle CtxOracle(Fx.F.P, Fx.CH, Fx.CtxRules);
  auto CinsV = Compiler.compile(Fx.F.RunTest, OptLevel::Opt2, CinsOracle);
  auto CtxV = Compiler.compile(Fx.F.RunTest, OptLevel::Opt2, CtxOracle);

  // Both inline get at both call sites.
  EXPECT_TRUE(planInlines(*CinsV, Fx.F.GetSite1, Fx.F.Get));
  EXPECT_TRUE(planInlines(*CtxV, Fx.F.GetSite1, Fx.F.Get));
  EXPECT_TRUE(planInlines(*CtxV, Fx.F.GetSite2, Fx.F.Get));

  // The context-sensitive variant must be strictly smaller with fewer
  // guards — the paper's central code-space claim in miniature.
  EXPECT_LT(CtxV->CodeBytes, CinsV->CodeBytes);
  EXPECT_LT(CtxV->Plan.NumGuards, CinsV->Plan.NumGuards);
  EXPECT_LT(CtxV->CompileCycles, CinsV->CompileCycles);

  // And the inlined hashCode targets must be the Figure 2c ones.
  const auto *Cs1 = planAt(*CtxV, Fx.F.GetSite1);
  ASSERT_NE(Cs1, nullptr);
  ASSERT_EQ(Cs1->Cases.size(), 1u);
  const InlineNode *GetBody1 = Cs1->Cases[0].Body.get();
  ASSERT_NE(GetBody1, nullptr);
  const auto *Hash1 = GetBody1->find(Fx.F.HashCodeSite);
  ASSERT_NE(Hash1, nullptr);
  ASSERT_EQ(Hash1->Cases.size(), 1u);
  EXPECT_EQ(Hash1->Cases[0].Callee, Fx.F.MyKeyHashCode);
}

TEST(CompilerTest, RecursiveInliningIsBlocked) {
  // A self-recursive tiny method must not be inlined into itself.
  ProgramBuilder B;
  ClassId C = B.addClass("C");
  MethodId Rec = B.declareMethod(C, "rec", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(Rec);
    auto Base = E.newLabel();
    E.load(0).ifZero(Base);
    E.load(0).iconst(1).isub().invokeStatic(Rec).vreturn();
    E.bind(Base);
    E.iconst(0).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, false);
  {
    CodeEmitter E = B.code(Main);
    E.iconst(3).invokeStatic(Rec).pop().ret();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();
  ClassHierarchy CH(P);
  CostModel Model;
  OptimizingCompiler Compiler(P, CH, Model);
  StaticOracle Oracle(P, CH);
  auto V = Compiler.compile(Rec, OptLevel::Opt1, Oracle);
  EXPECT_EQ(V->Plan.NumInlineBodies, 0u);
}

TEST(CompilerTest, BudgetRefusalsAreRecordedInDatabase) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);

  InlineRuleSet Rules;
  Rules.add(rule({{F.RunTest, F.GetSite1}}, F.Get, 60));
  Rules.add(rule({{F.RunTest, F.GetSite2}}, F.Get, 60));
  InlinerConfig Config;
  Config.AbsoluteUnitCap = 1; // Refuse everything.
  ProfileDirectedOracle Oracle(F.P, CH, Rules, Config);

  struct CountingSink : InlineRefusalSink {
    unsigned Refusals = 0;
    void recordRefusal(MethodId, const Trace &) override { ++Refusals; }
  };
  CountingSink Sink;
  CompileStats Stats;
  auto V = Compiler.compile(F.RunTest, OptLevel::Opt2, Oracle, &Sink, &Stats);
  EXPECT_EQ(V->Plan.NumInlineBodies, 0u);
  EXPECT_GE(Sink.Refusals, 2u) << "both hot get edges refused";
  EXPECT_EQ(Stats.DecisionsAccepted, 0u);
  EXPECT_GE(Stats.DecisionsRefused, 2u);
}

TEST(CompilerTest, DepthLimitStopsNestedInlining) {
  // A chain of tiny static calls deeper than HardMaxDepth.
  ProgramBuilder B;
  ClassId C = B.addClass("C");
  std::vector<MethodId> Chain;
  const unsigned Depth = 12;
  for (unsigned I = 0; I != Depth; ++I)
    Chain.push_back(B.declareMethod(C, "f" + std::to_string(I),
                                    MethodKind::Static, 0, true));
  for (unsigned I = 0; I != Depth; ++I) {
    CodeEmitter E = B.code(Chain[I]);
    if (I + 1 != Depth)
      E.invokeStatic(Chain[I + 1]).vreturn();
    else
      E.iconst(1).vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, false);
  {
    CodeEmitter E = B.code(Main);
    E.invokeStatic(Chain[0]).pop().ret();
    E.finish();
  }
  B.setEntry(Main);
  Program P = B.build();
  ClassHierarchy CH(P);
  CostModel Model;
  OptimizingCompiler Compiler(P, CH, Model);
  StaticOracle Oracle(P, CH);
  auto V = Compiler.compile(Chain[0], OptLevel::Opt2, Oracle);
  EXPECT_GT(V->Plan.MaxDepth, 0u);
  EXPECT_LE(V->Plan.MaxDepth, Oracle.config().HardMaxDepth);
  EXPECT_LT(V->Plan.NumInlineBodies, Depth);
}

TEST(CompilerTest, CompiledPlanExecutesCorrectly) {
  // End-to-end: install the context-sensitive runTest variant and check
  // the program still computes the right answer with inlined execution.
  FigureTwoFixture Fx;
  const int64_t Iterations = 5000;
  FigureOneProgram F = makeFigureOne(Iterations);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);

  InlineRuleSet Rules;
  Rules.add(rule({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}},
                 F.MyKeyHashCode, 50));
  Rules.add(rule({{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite2}},
                 F.ObjHashCode, 50));
  Rules.add(rule({{F.RunTest, F.GetSite1}}, F.Get, 60));
  Rules.add(rule({{F.RunTest, F.GetSite2}}, F.Get, 60));
  ProfileDirectedOracle Oracle(F.P, CH, Rules);

  VirtualMachine VM(F.P);
  auto V = Compiler.compile(F.RunTest, OptLevel::Opt2, Oracle);
  VM.codeManager().install(std::move(V));
  unsigned T = VM.addThread(F.P.entryMethod());
  VM.run();
  EXPECT_EQ(VM.threads()[T]->Result.asInt(), 3 * Iterations);
  EXPECT_GT(VM.counters().InlinedCallsEntered, 0u);
}
