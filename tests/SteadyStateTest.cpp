//===- tests/SteadyStateTest.cpp - Warmup/steady split detection -----------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The detector is a pure function of (event stream, wall cycles), so
// most cases here hand-build sinks with surgically placed events and
// golden-match the formatted verdict: every verdict string, split
// computation, and counter is pinned. A mismatch means the detection
// contract drifted; regenerate with AOCI_UPDATE_GOLDEN=1 only for an
// intentional change. The last cases run real scenario workloads to tie
// the detector to the trace stream the VM actually emits.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/SteadyState.h"
#include "workload/scenario/ScenarioSpec.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace aoci;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(AOCI_GOLDEN_DIR) + "/" + Name;
}

void expectMatchesGolden(const std::string &Name,
                         const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (const char *Update = std::getenv("AOCI_UPDATE_GOLDEN");
      Update && Update[0] == '1') {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing fixture " << Path
                  << " (regenerate with AOCI_UPDATE_GOLDEN=1)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "steady-state verdict drifted from " << Path
      << "; if intentional, rerun with AOCI_UPDATE_GOLDEN=1 and review "
         "the fixture diff";
}

void addCompileComplete(TraceSink &Sink, uint64_t Cycle, uint64_t Dur) {
  TraceEvent &E = Sink.append(TraceEventKind::CompileComplete, 2, Cycle);
  E.Dur = Dur;
}

void addWakeup(TraceSink &Sink, uint64_t Cycle) {
  Sink.append(TraceEventKind::OrganizerWakeup, 3, Cycle);
}

void addPhaseShift(TraceSink &Sink, uint64_t Cycle, int64_t Phase,
                   int64_t Phases) {
  TraceEvent &E =
      Sink.append(TraceEventKind::PhaseShift, TraceTrackVm, Cycle);
  E.A = Phase;
  E.B = Phases;
}

/// A run that settled: all compilation done by 10% of the run, decay
/// ticks evenly spaced through the rest.
TraceSink settledSink() {
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  Sink.append(TraceEventKind::CompileRequest, 6, 50'000);
  addCompileComplete(Sink, 80'000, 20'000);
  for (uint64_t C = 120'000; C < 1'000'000; C += 40'000)
    addWakeup(Sink, C);
  return Sink;
}

} // namespace

TEST(SteadyStateTest, SettledRun) {
  TraceSink Sink = settledSink();
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_TRUE(R.Computed);
  EXPECT_TRUE(R.Reached);
  EXPECT_EQ(R.WarmupCycles, 100'000u); // compile end = 80k + 20k dur.
  EXPECT_EQ(R.SteadyCycles, 900'000u);
  expectMatchesGolden("steady_settled.golden", formatSteadyState(R));
}

TEST(SteadyStateTest, CompilerNeverQuiet) {
  // A compile finishing at the final cycle leaves no tail at all.
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  addCompileComplete(Sink, 900'000, 100'000);
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_TRUE(R.Computed);
  EXPECT_FALSE(R.Reached);
  expectMatchesGolden("steady_never_quiet.golden", formatSteadyState(R));
}

TEST(SteadyStateTest, TailTooShort) {
  // Compilation quiet only for the last 5% — under MinSteadyFraction.
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  addCompileComplete(Sink, 940'000, 10'000);
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_TRUE(R.Computed);
  EXPECT_FALSE(R.Reached);
  expectMatchesGolden("steady_short_tail.golden", formatSteadyState(R));
}

TEST(SteadyStateTest, UnstableWakeupDensity) {
  // All tail wakeups crammed into the first of 8 windows: the organizer
  // is visibly bursty, so the run has not settled even though the
  // compiler is quiet.
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  addCompileComplete(Sink, 90'000, 10'000);
  for (uint64_t C = 100'000; C < 116'000; C += 1'000)
    addWakeup(Sink, C);
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_TRUE(R.Computed);
  EXPECT_FALSE(R.Reached);
  expectMatchesGolden("steady_unstable_density.golden",
                      formatSteadyState(R));
}

TEST(SteadyStateTest, EmptyRun) {
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  SteadyStateResult R = detectSteadyState(Sink, 0);
  EXPECT_TRUE(R.Computed);
  EXPECT_FALSE(R.Reached);
  expectMatchesGolden("steady_empty.golden", formatSteadyState(R));
}

TEST(SteadyStateTest, InsufficientKindMaskMeansUnknown) {
  // A sink that never recorded compile events cannot support a verdict;
  // the detector must refuse rather than declare a bogus "settled".
  TraceSink Sink;
  Sink.enable(traceKindBit(TraceEventKind::OrganizerWakeup));
  addWakeup(Sink, 500'000);
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_FALSE(R.Computed);
  EXPECT_FALSE(R.Reached);
  EXPECT_EQ(R.Why, "trace lacks steady-state kinds");

  TraceSink Disabled;
  EXPECT_FALSE(detectSteadyState(Disabled, 1'000'000).Computed);
}

TEST(SteadyStateTest, PhaseShiftRestartsWarmup) {
  // Negative case from the issue: detection must never declare steady
  // state while workload phases are still flipping. Same quiet compiler
  // as the settled case, but shifts spread through the whole run — the
  // last one pins the split past the tail minimum.
  TraceSink Sink = settledSink();
  for (uint64_t C = 200'000; C <= 950'000; C += 250'000)
    addPhaseShift(Sink, C, static_cast<int64_t>(C / 250'000), 4);
  SteadyStateResult R = detectSteadyState(Sink, 1'000'000);
  EXPECT_TRUE(R.Computed);
  EXPECT_FALSE(R.Reached) << "a flipping run must not count as settled";
  EXPECT_EQ(R.LastPhaseShiftCycle, 950'000u);
  EXPECT_EQ(R.Why, "steady tail too short");

  // Once the last shift leaves a long quiet tail, the verdict flips
  // back and the split lands exactly on that shift.
  TraceSink Calm = settledSink();
  addPhaseShift(Calm, 200'000, 1, 2);
  SteadyStateResult R2 = detectSteadyState(Calm, 1'000'000);
  EXPECT_TRUE(R2.Reached);
  EXPECT_EQ(R2.WarmupCycles, 200'000u);
}

TEST(SteadyStateTest, RealScenarioRunSplitsDeterministically) {
  // End-to-end: the phase-flip adversary traced through a real VM run
  // emits exactly one phase-shift per phase, and the detector's split
  // covers the last of them. Two identical runs must agree bit-for-bit.
  RunConfig Config;
  Config.WorkloadName = "scn-phase-flip";
  Config.Params.Scale = 0.5;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  Config.Trace = &Sink;
  RunResult R = runExperiment(Config);

  unsigned Shifts = 0;
  uint64_t LastShift = 0;
  Sink.forEach([&](const TraceEvent &E) {
    if (E.Kind == TraceEventKind::PhaseShift) {
      ++Shifts;
      EXPECT_EQ(E.B, 2) << "phase count arg";
      LastShift = E.Cycle;
    }
  });
  EXPECT_EQ(Shifts, 2u) << "one phase-shift per phase, exactly";

  SteadyStateResult V = detectSteadyState(Sink, R.WallCycles);
  ASSERT_TRUE(V.Computed);
  EXPECT_EQ(V.LastPhaseShiftCycle, LastShift);
  EXPECT_GE(V.WarmupCycles, LastShift)
      << "warmup can never end before the last phase shift";

  TraceSink Sink2;
  Sink2.enable(steadyStateKindMask());
  RunConfig Config2 = Config;
  Config2.Trace = &Sink2;
  RunResult R2 = runExperiment(Config2);
  EXPECT_EQ(R2.WallCycles, R.WallCycles);
  EXPECT_EQ(formatSteadyState(detectSteadyState(Sink2, R2.WallCycles)),
            formatSteadyState(V));
}

TEST(SteadyStateTest, MetricsCarryTheVerdict) {
  // runExperiment itself fills the RunMetrics-facing fields through
  // makeMetrics; check the plumbing via a tiny traced grid.
  GridConfig Config;
  Config.Workloads = {"scn-megamorphic-storm"};
  Config.Policies = {PolicyKind::Fixed};
  Config.Depths = {3};
  Config.Params.Scale = 0.5;
  Config.Trace = true;
  Config.TraceKindMask = steadyStateKindMask();
  GridResults Results = runGrid(Config);
  ASSERT_EQ(Results.metrics().size(), 2u); // baseline + one cell.
  for (const RunMetrics &M : Results.metrics()) {
    EXPECT_TRUE(M.SteadyKnown);
    if (M.SteadyReached) {
      EXPECT_GT(M.SteadyCycles, 0u);
      EXPECT_EQ(M.WarmupCycles + M.SteadyCycles, M.RunCycles);
    }
  }
}
