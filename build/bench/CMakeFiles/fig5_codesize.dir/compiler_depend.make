# Empty compiler generated dependencies file for fig5_codesize.
# This may be replaced when dependencies are built.
