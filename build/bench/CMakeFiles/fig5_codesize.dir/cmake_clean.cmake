file(REMOVE_RECURSE
  "CMakeFiles/fig5_codesize.dir/fig5_codesize.cpp.o"
  "CMakeFiles/fig5_codesize.dir/fig5_codesize.cpp.o.d"
  "fig5_codesize"
  "fig5_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
