file(REMOVE_RECURSE
  "CMakeFiles/sec4_trace_stats.dir/sec4_trace_stats.cpp.o"
  "CMakeFiles/sec4_trace_stats.dir/sec4_trace_stats.cpp.o.d"
  "sec4_trace_stats"
  "sec4_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
