# Empty dependencies file for sec4_trace_stats.
# This may be replaced when dependencies are built.
