file(REMOVE_RECURSE
  "libaoci_opt.a"
)
