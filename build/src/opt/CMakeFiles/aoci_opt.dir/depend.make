# Empty dependencies file for aoci_opt.
# This may be replaced when dependencies are built.
