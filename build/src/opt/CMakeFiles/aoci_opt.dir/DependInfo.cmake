
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/Compiler.cpp" "src/opt/CMakeFiles/aoci_opt.dir/Compiler.cpp.o" "gcc" "src/opt/CMakeFiles/aoci_opt.dir/Compiler.cpp.o.d"
  "/root/repo/src/opt/InliningOracle.cpp" "src/opt/CMakeFiles/aoci_opt.dir/InliningOracle.cpp.o" "gcc" "src/opt/CMakeFiles/aoci_opt.dir/InliningOracle.cpp.o.d"
  "/root/repo/src/opt/PlanPrinter.cpp" "src/opt/CMakeFiles/aoci_opt.dir/PlanPrinter.cpp.o" "gcc" "src/opt/CMakeFiles/aoci_opt.dir/PlanPrinter.cpp.o.d"
  "/root/repo/src/opt/SizeEstimator.cpp" "src/opt/CMakeFiles/aoci_opt.dir/SizeEstimator.cpp.o" "gcc" "src/opt/CMakeFiles/aoci_opt.dir/SizeEstimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/aoci_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/aoci_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aoci_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/aoci_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aoci_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
