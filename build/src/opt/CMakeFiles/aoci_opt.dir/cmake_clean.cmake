file(REMOVE_RECURSE
  "CMakeFiles/aoci_opt.dir/Compiler.cpp.o"
  "CMakeFiles/aoci_opt.dir/Compiler.cpp.o.d"
  "CMakeFiles/aoci_opt.dir/InliningOracle.cpp.o"
  "CMakeFiles/aoci_opt.dir/InliningOracle.cpp.o.d"
  "CMakeFiles/aoci_opt.dir/PlanPrinter.cpp.o"
  "CMakeFiles/aoci_opt.dir/PlanPrinter.cpp.o.d"
  "CMakeFiles/aoci_opt.dir/SizeEstimator.cpp.o"
  "CMakeFiles/aoci_opt.dir/SizeEstimator.cpp.o.d"
  "libaoci_opt.a"
  "libaoci_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
