file(REMOVE_RECURSE
  "libaoci_support.a"
)
