file(REMOVE_RECURSE
  "CMakeFiles/aoci_support.dir/Statistics.cpp.o"
  "CMakeFiles/aoci_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/aoci_support.dir/StringUtils.cpp.o"
  "CMakeFiles/aoci_support.dir/StringUtils.cpp.o.d"
  "libaoci_support.a"
  "libaoci_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
