# Empty dependencies file for aoci_support.
# This may be replaced when dependencies are built.
