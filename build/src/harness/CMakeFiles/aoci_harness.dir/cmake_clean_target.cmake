file(REMOVE_RECURSE
  "libaoci_harness.a"
)
