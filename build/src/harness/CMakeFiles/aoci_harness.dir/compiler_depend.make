# Empty compiler generated dependencies file for aoci_harness.
# This may be replaced when dependencies are built.
