file(REMOVE_RECURSE
  "CMakeFiles/aoci_harness.dir/CsvExport.cpp.o"
  "CMakeFiles/aoci_harness.dir/CsvExport.cpp.o.d"
  "CMakeFiles/aoci_harness.dir/Experiment.cpp.o"
  "CMakeFiles/aoci_harness.dir/Experiment.cpp.o.d"
  "CMakeFiles/aoci_harness.dir/Reporters.cpp.o"
  "CMakeFiles/aoci_harness.dir/Reporters.cpp.o.d"
  "libaoci_harness.a"
  "libaoci_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
