# Empty dependencies file for aoci_profile.
# This may be replaced when dependencies are built.
