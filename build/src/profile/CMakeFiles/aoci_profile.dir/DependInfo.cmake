
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/CallingContextTree.cpp" "src/profile/CMakeFiles/aoci_profile.dir/CallingContextTree.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/CallingContextTree.cpp.o.d"
  "/root/repo/src/profile/Context.cpp" "src/profile/CMakeFiles/aoci_profile.dir/Context.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/Context.cpp.o.d"
  "/root/repo/src/profile/DynamicCallGraph.cpp" "src/profile/CMakeFiles/aoci_profile.dir/DynamicCallGraph.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/DynamicCallGraph.cpp.o.d"
  "/root/repo/src/profile/InlineRules.cpp" "src/profile/CMakeFiles/aoci_profile.dir/InlineRules.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/InlineRules.cpp.o.d"
  "/root/repo/src/profile/Listeners.cpp" "src/profile/CMakeFiles/aoci_profile.dir/Listeners.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/Listeners.cpp.o.d"
  "/root/repo/src/profile/ProfileIo.cpp" "src/profile/CMakeFiles/aoci_profile.dir/ProfileIo.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/ProfileIo.cpp.o.d"
  "/root/repo/src/profile/TraceStatistics.cpp" "src/profile/CMakeFiles/aoci_profile.dir/TraceStatistics.cpp.o" "gcc" "src/profile/CMakeFiles/aoci_profile.dir/TraceStatistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/aoci_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aoci_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/aoci_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aoci_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
