file(REMOVE_RECURSE
  "CMakeFiles/aoci_profile.dir/CallingContextTree.cpp.o"
  "CMakeFiles/aoci_profile.dir/CallingContextTree.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/Context.cpp.o"
  "CMakeFiles/aoci_profile.dir/Context.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/DynamicCallGraph.cpp.o"
  "CMakeFiles/aoci_profile.dir/DynamicCallGraph.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/InlineRules.cpp.o"
  "CMakeFiles/aoci_profile.dir/InlineRules.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/Listeners.cpp.o"
  "CMakeFiles/aoci_profile.dir/Listeners.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/ProfileIo.cpp.o"
  "CMakeFiles/aoci_profile.dir/ProfileIo.cpp.o.d"
  "CMakeFiles/aoci_profile.dir/TraceStatistics.cpp.o"
  "CMakeFiles/aoci_profile.dir/TraceStatistics.cpp.o.d"
  "libaoci_profile.a"
  "libaoci_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
