file(REMOVE_RECURSE
  "libaoci_profile.a"
)
