file(REMOVE_RECURSE
  "libaoci_core.a"
)
