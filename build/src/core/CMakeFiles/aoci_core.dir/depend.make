# Empty dependencies file for aoci_core.
# This may be replaced when dependencies are built.
