file(REMOVE_RECURSE
  "CMakeFiles/aoci_core.dir/AdaptiveSystem.cpp.o"
  "CMakeFiles/aoci_core.dir/AdaptiveSystem.cpp.o.d"
  "CMakeFiles/aoci_core.dir/AosDatabase.cpp.o"
  "CMakeFiles/aoci_core.dir/AosDatabase.cpp.o.d"
  "CMakeFiles/aoci_core.dir/Controller.cpp.o"
  "CMakeFiles/aoci_core.dir/Controller.cpp.o.d"
  "CMakeFiles/aoci_core.dir/Organizers.cpp.o"
  "CMakeFiles/aoci_core.dir/Organizers.cpp.o.d"
  "libaoci_core.a"
  "libaoci_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
