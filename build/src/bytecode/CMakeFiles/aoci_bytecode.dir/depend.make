# Empty dependencies file for aoci_bytecode.
# This may be replaced when dependencies are built.
