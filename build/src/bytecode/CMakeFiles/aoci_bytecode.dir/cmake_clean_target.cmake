file(REMOVE_RECURSE
  "libaoci_bytecode.a"
)
