file(REMOVE_RECURSE
  "CMakeFiles/aoci_bytecode.dir/ClassHierarchy.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/ClassHierarchy.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/Disassembler.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/Disassembler.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/Method.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/Method.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/Opcode.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/Opcode.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/Program.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/Program.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/ProgramBuilder.cpp.o.d"
  "CMakeFiles/aoci_bytecode.dir/Verifier.cpp.o"
  "CMakeFiles/aoci_bytecode.dir/Verifier.cpp.o.d"
  "libaoci_bytecode.a"
  "libaoci_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
