
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/ClassHierarchy.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/ClassHierarchy.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/ClassHierarchy.cpp.o.d"
  "/root/repo/src/bytecode/Disassembler.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Disassembler.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Disassembler.cpp.o.d"
  "/root/repo/src/bytecode/Method.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Method.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Method.cpp.o.d"
  "/root/repo/src/bytecode/Opcode.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Opcode.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Opcode.cpp.o.d"
  "/root/repo/src/bytecode/Program.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Program.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Program.cpp.o.d"
  "/root/repo/src/bytecode/ProgramBuilder.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/ProgramBuilder.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/ProgramBuilder.cpp.o.d"
  "/root/repo/src/bytecode/Verifier.cpp" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Verifier.cpp.o" "gcc" "src/bytecode/CMakeFiles/aoci_bytecode.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/aoci_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
