# Empty dependencies file for aoci_policy.
# This may be replaced when dependencies are built.
