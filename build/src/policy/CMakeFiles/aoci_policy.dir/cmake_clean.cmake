file(REMOVE_RECURSE
  "CMakeFiles/aoci_policy.dir/ContextPolicy.cpp.o"
  "CMakeFiles/aoci_policy.dir/ContextPolicy.cpp.o.d"
  "libaoci_policy.a"
  "libaoci_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
