file(REMOVE_RECURSE
  "libaoci_policy.a"
)
