file(REMOVE_RECURSE
  "libaoci_workload.a"
)
