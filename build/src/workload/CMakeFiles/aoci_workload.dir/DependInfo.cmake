
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Compress.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Compress.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Compress.cpp.o.d"
  "/root/repo/src/workload/Db.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Db.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Db.cpp.o.d"
  "/root/repo/src/workload/FigureOne.cpp" "src/workload/CMakeFiles/aoci_workload.dir/FigureOne.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/FigureOne.cpp.o.d"
  "/root/repo/src/workload/Jack.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Jack.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Jack.cpp.o.d"
  "/root/repo/src/workload/Javac.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Javac.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Javac.cpp.o.d"
  "/root/repo/src/workload/Jbb.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Jbb.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Jbb.cpp.o.d"
  "/root/repo/src/workload/Jess.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Jess.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Jess.cpp.o.d"
  "/root/repo/src/workload/Mpegaudio.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Mpegaudio.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Mpegaudio.cpp.o.d"
  "/root/repo/src/workload/Mtrt.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Mtrt.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Mtrt.cpp.o.d"
  "/root/repo/src/workload/Registry.cpp" "src/workload/CMakeFiles/aoci_workload.dir/Registry.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/Registry.cpp.o.d"
  "/root/repo/src/workload/WorkloadCommon.cpp" "src/workload/CMakeFiles/aoci_workload.dir/WorkloadCommon.cpp.o" "gcc" "src/workload/CMakeFiles/aoci_workload.dir/WorkloadCommon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/aoci_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aoci_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
