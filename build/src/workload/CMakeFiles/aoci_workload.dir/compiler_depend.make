# Empty compiler generated dependencies file for aoci_workload.
# This may be replaced when dependencies are built.
