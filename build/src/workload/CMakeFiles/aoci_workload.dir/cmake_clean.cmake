file(REMOVE_RECURSE
  "CMakeFiles/aoci_workload.dir/Compress.cpp.o"
  "CMakeFiles/aoci_workload.dir/Compress.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Db.cpp.o"
  "CMakeFiles/aoci_workload.dir/Db.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/FigureOne.cpp.o"
  "CMakeFiles/aoci_workload.dir/FigureOne.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Jack.cpp.o"
  "CMakeFiles/aoci_workload.dir/Jack.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Javac.cpp.o"
  "CMakeFiles/aoci_workload.dir/Javac.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Jbb.cpp.o"
  "CMakeFiles/aoci_workload.dir/Jbb.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Jess.cpp.o"
  "CMakeFiles/aoci_workload.dir/Jess.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Mpegaudio.cpp.o"
  "CMakeFiles/aoci_workload.dir/Mpegaudio.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Mtrt.cpp.o"
  "CMakeFiles/aoci_workload.dir/Mtrt.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/Registry.cpp.o"
  "CMakeFiles/aoci_workload.dir/Registry.cpp.o.d"
  "CMakeFiles/aoci_workload.dir/WorkloadCommon.cpp.o"
  "CMakeFiles/aoci_workload.dir/WorkloadCommon.cpp.o.d"
  "libaoci_workload.a"
  "libaoci_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
