file(REMOVE_RECURSE
  "libaoci_vm.a"
)
