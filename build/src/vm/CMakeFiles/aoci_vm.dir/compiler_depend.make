# Empty compiler generated dependencies file for aoci_vm.
# This may be replaced when dependencies are built.
