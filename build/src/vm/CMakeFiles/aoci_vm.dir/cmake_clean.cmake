file(REMOVE_RECURSE
  "CMakeFiles/aoci_vm.dir/CodeManager.cpp.o"
  "CMakeFiles/aoci_vm.dir/CodeManager.cpp.o.d"
  "CMakeFiles/aoci_vm.dir/InlinePlan.cpp.o"
  "CMakeFiles/aoci_vm.dir/InlinePlan.cpp.o.d"
  "CMakeFiles/aoci_vm.dir/VirtualMachine.cpp.o"
  "CMakeFiles/aoci_vm.dir/VirtualMachine.cpp.o.d"
  "libaoci_vm.a"
  "libaoci_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
