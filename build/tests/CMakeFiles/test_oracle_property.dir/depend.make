# Empty dependencies file for test_oracle_property.
# This may be replaced when dependencies are built.
