file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_property.dir/OraclePropertyTest.cpp.o"
  "CMakeFiles/test_oracle_property.dir/OraclePropertyTest.cpp.o.d"
  "test_oracle_property"
  "test_oracle_property.pdb"
  "test_oracle_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
