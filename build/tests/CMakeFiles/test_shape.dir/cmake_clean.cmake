file(REMOVE_RECURSE
  "CMakeFiles/test_shape.dir/ShapeTest.cpp.o"
  "CMakeFiles/test_shape.dir/ShapeTest.cpp.o.d"
  "test_shape"
  "test_shape.pdb"
  "test_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
