# Empty dependencies file for test_vm_property.
# This may be replaced when dependencies are built.
