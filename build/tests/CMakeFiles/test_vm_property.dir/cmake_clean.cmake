file(REMOVE_RECURSE
  "CMakeFiles/test_vm_property.dir/VmPropertyTest.cpp.o"
  "CMakeFiles/test_vm_property.dir/VmPropertyTest.cpp.o.d"
  "test_vm_property"
  "test_vm_property.pdb"
  "test_vm_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
