file(REMOVE_RECURSE
  "CMakeFiles/test_vm_unit.dir/VmUnitTest.cpp.o"
  "CMakeFiles/test_vm_unit.dir/VmUnitTest.cpp.o.d"
  "test_vm_unit"
  "test_vm_unit.pdb"
  "test_vm_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
