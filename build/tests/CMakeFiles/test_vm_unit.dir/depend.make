# Empty dependencies file for test_vm_unit.
# This may be replaced when dependencies are built.
