# Empty dependencies file for test_profileio.
# This may be replaced when dependencies are built.
