file(REMOVE_RECURSE
  "CMakeFiles/test_profileio.dir/ProfileIoTest.cpp.o"
  "CMakeFiles/test_profileio.dir/ProfileIoTest.cpp.o.d"
  "test_profileio"
  "test_profileio.pdb"
  "test_profileio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
