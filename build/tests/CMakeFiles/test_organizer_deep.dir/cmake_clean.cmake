file(REMOVE_RECURSE
  "CMakeFiles/test_organizer_deep.dir/OrganizerDeepTest.cpp.o"
  "CMakeFiles/test_organizer_deep.dir/OrganizerDeepTest.cpp.o.d"
  "test_organizer_deep"
  "test_organizer_deep.pdb"
  "test_organizer_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_organizer_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
