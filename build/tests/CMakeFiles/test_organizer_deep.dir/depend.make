# Empty dependencies file for test_organizer_deep.
# This may be replaced when dependencies are built.
