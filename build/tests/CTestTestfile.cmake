# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_bytecode[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_profileio[1]_include.cmake")
include("/root/repo/build/tests/test_vm_property[1]_include.cmake")
include("/root/repo/build/tests/test_oracle_property[1]_include.cmake")
include("/root/repo/build/tests/test_organizer_deep[1]_include.cmake")
include("/root/repo/build/tests/test_vm_unit[1]_include.cmake")
include("/root/repo/build/tests/test_shape[1]_include.cmake")
include("/root/repo/build/tests/test_mutation[1]_include.cmake")
