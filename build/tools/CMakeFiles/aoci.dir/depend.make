# Empty dependencies file for aoci.
# This may be replaced when dependencies are built.
