file(REMOVE_RECURSE
  "CMakeFiles/aoci.dir/aoci.cpp.o"
  "CMakeFiles/aoci.dir/aoci.cpp.o.d"
  "aoci"
  "aoci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
