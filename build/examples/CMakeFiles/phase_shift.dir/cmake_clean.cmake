file(REMOVE_RECURSE
  "CMakeFiles/phase_shift.dir/phase_shift.cpp.o"
  "CMakeFiles/phase_shift.dir/phase_shift.cpp.o.d"
  "phase_shift"
  "phase_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
