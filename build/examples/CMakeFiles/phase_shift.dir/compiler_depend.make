# Empty compiler generated dependencies file for phase_shift.
# This may be replaced when dependencies are built.
