
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_program.cpp" "examples/CMakeFiles/custom_program.dir/custom_program.cpp.o" "gcc" "examples/CMakeFiles/custom_program.dir/custom_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aoci_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/aoci_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aoci_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/aoci_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/aoci_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/aoci_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aoci_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/aoci_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/aoci_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
