//===- bench/fig6_overhead.cpp - Regenerates Figure 6 ----------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Runs the sweep and prints Figure 6: the percentage of execution time
// spent in each adaptive-optimization-system component (AOS listeners,
// compilation thread, decay organizer, AI organizer, method-sample
// organizer, controller) for cins and for each policy x depth, averaged
// over the benchmarks. The paper's observations to check: total AOS
// overhead stays small; the compilation-thread share drops 8-33%
// relative to cins; listener overhead roughly doubles but remains a
// vanishing fraction of execution.
//
// Set AOCI_SCALE (e.g. 0.25) to shrink run length for a quick pass and
// AOCI_JOBS to bound the worker threads (default: all hardware threads;
// results are byte-identical for every job count).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reporters.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

int main() {
  GridConfig Config;
  if (const char *Scale = std::getenv("AOCI_SCALE"))
    Config.Params.Scale = std::atof(Scale);
  if (const char *Trials = std::getenv("AOCI_TRIALS"))
    Config.Trials = static_cast<unsigned>(std::atoi(Trials));
  unsigned Jobs = 0;
  if (const char *J = std::getenv("AOCI_JOBS"))
    Jobs = static_cast<unsigned>(std::atoi(J));
  GridResults Results =
      runGridParallel(Config, Jobs, [](const std::string &Line) {
        std::fprintf(stderr, "%s\n", Line.c_str());
      });
  std::printf("%s\n",
              reportFigure6(Results, Config.Policies, Config.Depths).c_str());

  // The compilation-share reduction relative to cins, per policy/depth.
  std::printf("Relative change of the compilation-thread share vs cins "
              "(paper: 8-33%% reductions):\n");
  double CinsShare = 0;
  for (const std::string &W : Results.workloads())
    CinsShare += Results.baseline(W).componentFraction(
        AosComponent::Compilation);
  CinsShare /= static_cast<double>(Results.workloads().size());
  for (PolicyKind Policy : Config.Policies) {
    for (unsigned D : Config.Depths) {
      double Share = 0;
      for (const std::string &W : Results.workloads())
        Share += Results.cell(W, Policy, D)
                     .componentFraction(AosComponent::Compilation);
      Share /= static_cast<double>(Results.workloads().size());
      std::printf("  %-10s max=%u: %+.1f%%\n", policyKindName(Policy), D,
                  (Share / CinsShare - 1.0) * 100.0);
    }
  }
  return 0;
}
