//===- bench/warm_start.cpp - Cold vs. warm vs. stale comparison ------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The online -> PGO bridge, measured: for every Table 1 workload this
// runs three legs and compares time-to-steady-state with the harness's
// detector (harness/SteadyState.h):
//
//   cold   a fresh adaptive system, profile captured at completion
//   warm   the same run re-seeded from the cold leg's profile
//          (`--warm-start` on the CLI); same workload seed, so the
//          profile is exactly right for what is about to execute
//   stale  re-seeded from a profile trained on a *phase-shifted* input
//          (different workload seed), with OSR on and a bounded code
//          cache, so wrong warm-start decisions must be walked back
//          through the decay organizer, deoptimization, and eviction
//          paths rather than merely ignored. Runs at min(scale, 0.3):
//          its verdict is counters and result equality, and the
//          eviction churn is host-expensive at larger scales
//
// Gates (exit nonzero on failure):
//   - the warm leg reaches steady state in fewer simulated cycles than
//     the cold leg on at least 6 of the 8 workloads. A cold leg that
//     never settles within the run is a censored observation (its
//     time-to-steady-state exceeds the wall); the warm leg wins it by
//     settling below that wall. compress is the known exception: its
//     profile replays a run that was already optimal from the first
//     compile, so warm is bit-identical to cold — an exact tie;
//   - every stale leg completes with the same program result as cold
//     and, whenever its profile seeded any DCG traces, a nonzero
//     decay-drop counter (the stale state visibly fades out instead of
//     wedging the system);
//   - across all stale legs, the deopt counter is nonzero (wrong
//     speculation actually exercised the walk-back machinery).
//
// Honors AOCI_SCALE like the figure sweeps. With --json FILE it also
// writes the per-leg warmup cycles in google-benchmark JSON shape so
// tools/check_bench_regression.py can gate run-over-run drift
// (BENCH_warm_start.json in CI).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/SteadyState.h"
#include "profile/ProfileIo.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace aoci;

namespace {

/// The workload seed the stale legs train on. Any value other than the
/// production seed (WorkloadParams default, 1) phase-shifts the
/// procedural input streams, which is what makes the profile stale.
constexpr uint64_t StaleTrainingSeed = 99;

struct Leg {
  bool Completed = false;
  int64_t ProgramResult = 0;
  uint64_t WallCycles = 0;
  uint64_t WarmupCycles = 0;
  bool SteadyReached = false;
  uint64_t OptCompileCycles = 0;
  uint64_t WarmApplied = 0;
  uint64_t WarmDropped = 0;
  uint64_t DecayDropped = 0;
  uint64_t Deopts = 0;
};

RunConfig baseConfig(const std::string &Workload, double Scale) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  return Config;
}

Leg runLeg(RunConfig Config) {
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  Config.Trace = &Sink;
  const RunResult R = runExperiment(Config);
  const SteadyStateResult V = detectSteadyState(Sink, R.WallCycles);
  Leg L;
  L.Completed = true;
  L.ProgramResult = R.ProgramResult;
  L.WallCycles = R.WallCycles;
  L.WarmupCycles = V.WarmupCycles;
  L.SteadyReached = V.Reached;
  L.OptCompileCycles = R.OptCompileCycles;
  L.WarmApplied = R.WarmStartApplied;
  L.WarmDropped = R.WarmStartDropped;
  L.DecayDropped = R.DecayEntriesDropped;
  L.Deopts = R.Deopts;
  return L;
}

/// Trains a profile: runs \p Config untraced with capture on and parses
/// the snapshot. Returns null (and reports) if the snapshot fails to
/// round-trip, which would be a ProfileIo bug.
std::shared_ptr<const ProfileData> trainProfile(RunConfig Config) {
  Config.CaptureProfile = true;
  const RunResult R = runExperiment(Config);
  auto Profile = std::make_shared<ProfileData>();
  std::string Error;
  if (!parseProfile(R.CapturedProfile, *Profile, Error)) {
    std::printf("FATAL: captured profile for %s failed to parse: %s\n",
                Config.WorkloadName.c_str(), Error.c_str());
    return nullptr;
  }
  return Profile;
}

} // namespace

int main(int argc, char **argv) {
  // Line-buffer stdout so CI's tee shows per-workload progress live.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "usage: warm_start [--json FILE]\n");
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  const std::vector<std::string> &Workloads = workloadNames();
  unsigned WarmFaster = 0;
  bool StaleOk = true;
  uint64_t TotalStaleDeopts = 0;
  std::string Json;

  std::printf("%-14s %14s %14s %14s %12s %10s  %s\n", "workload",
              "cold warmup", "warm warmup", "stale warmup", "cy saved",
              "compile cy", "stale verdict");
  for (const std::string &W : Workloads) {
    // Cold leg doubles as the warm leg's trainer: capture its profile.
    RunConfig Cold = baseConfig(W, Scale);
    Cold.CaptureProfile = true;
    TraceSink ColdSink;
    ColdSink.enable(steadyStateKindMask());
    Cold.Trace = &ColdSink;
    const RunResult ColdR = runExperiment(Cold);
    const SteadyStateResult ColdV = detectSteadyState(ColdSink, ColdR.WallCycles);

    auto Profile = std::make_shared<ProfileData>();
    std::string Error;
    if (!parseProfile(ColdR.CapturedProfile, *Profile, Error)) {
      std::printf("FATAL: captured profile for %s failed to parse: %s\n",
                  W.c_str(), Error.c_str());
      return 1;
    }

    RunConfig WarmCfg = baseConfig(W, Scale);
    WarmCfg.WarmStart = Profile;
    const Leg Warm = runLeg(WarmCfg);

    // Stale leg: train at a phase-shifted seed, then run the production
    // seed warm-started from it with OSR and a bounded code cache on so
    // wrong decisions get deoptimized and evicted, not just decayed.
    //
    // These robustness legs run at a capped scale: their verdict is
    // counters and result equality, not timing, and the bounded cache's
    // evict -> recompile -> re-interpret churn makes them one to two
    // orders of magnitude more host-expensive per simulated cycle than
    // the cold/warm legs — at full scale they cost the better part of
    // an hour for no additional signal.
    const double StaleScale = std::min(Scale, 0.3);
    RunConfig Train = baseConfig(W, StaleScale);
    Train.Params.Seed = StaleTrainingSeed;
    std::shared_ptr<const ProfileData> StaleProfile = trainProfile(Train);
    if (!StaleProfile)
      return 1;
    RunConfig StaleCfg = baseConfig(W, StaleScale);
    StaleCfg.WarmStart = StaleProfile;
    StaleCfg.Aos.Osr.Enabled = true;
    StaleCfg.Model.CodeCache.CapacityBytes = 6000;
    // The stock decay (every 120 samples, factor 0.95) needs ~10k
    // samples to push a seeded weight below the retention threshold —
    // far more than one run delivers. Tighten it so the stale state's
    // fade-out is observable within the run, the same move the
    // phase-flip scenario test makes (the counters are under test
    // here, not the default decay schedule).
    StaleCfg.Aos.DecayPeriodSamples = 16;
    StaleCfg.Aos.DecayFactor = 0.5;
    const Leg Stale = runLeg(StaleCfg);

    // Reference for the stale correctness check: a default-config cold
    // run at the stale legs' scale. The simulated program result is
    // configuration-invariant (OSR, cache bounds, and profiles never
    // change what the program computes — pinned by the OSR and
    // code-cache differential tests), so the cheap unbounded run is the
    // same oracle as an OSR + thrashing-cache cold leg would be.
    RunConfig StaleRefCfg = baseConfig(W, StaleScale);
    const RunResult StaleRef = runExperiment(StaleRefCfg);

    // A warm win: the warm leg settles and either does so in strictly
    // fewer cycles than cold, or the cold leg never settles within the
    // run at all — a censored observation whose time-to-steady-state
    // exceeds the wall, which the warm warmup is already below.
    const bool ColdCensored =
        !ColdV.Reached && Warm.WarmupCycles < ColdR.WallCycles;
    if (Warm.SteadyReached &&
        (ColdCensored ||
         (ColdV.Reached && Warm.WarmupCycles < ColdV.WarmupCycles)))
      ++WarmFaster;
    // The decay requirement only applies when there is seeded DCG state
    // to decay: compress's phase-shifted profile is hot-method-only
    // (its single hot loop's traces have decayed away by snapshot
    // time), so its [dcg] section is empty and nothing can drop.
    const bool ThisStaleOk =
        Stale.Completed && Stale.ProgramResult == StaleRef.ProgramResult &&
        (StaleProfile->DcgTraces.empty() || Stale.DecayDropped > 0);
    StaleOk &= ThisStaleOk;
    TotalStaleDeopts += Stale.Deopts;

    const int64_t Saved = static_cast<int64_t>(ColdV.WarmupCycles) -
                          static_cast<int64_t>(Warm.WarmupCycles);
    const int64_t CompileSaved = static_cast<int64_t>(ColdR.OptCompileCycles) -
                                 static_cast<int64_t>(Warm.OptCompileCycles);
    std::printf("%-14s %13llu%s %13llu%s %14llu %12lld %10lld  %s (%llu "
                "dropped, %llu decayed, %llu deopts)\n",
                W.c_str(),
                static_cast<unsigned long long>(ColdV.WarmupCycles),
                ColdV.Reached ? " " : "*",
                static_cast<unsigned long long>(Warm.WarmupCycles),
                Warm.SteadyReached ? " " : "*",
                static_cast<unsigned long long>(Stale.WarmupCycles),
                static_cast<long long>(Saved),
                static_cast<long long>(CompileSaved),
                ThisStaleOk ? "ok" : "FAILED",
                static_cast<unsigned long long>(Stale.WarmDropped),
                static_cast<unsigned long long>(Stale.DecayDropped),
                static_cast<unsigned long long>(Stale.Deopts));

    // One google-benchmark row per leg; "real_time" carries simulated
    // warmup cycles so the regression gate tracks time-to-steady-state.
    for (const auto &[LegName, Warmup] :
         {std::pair<const char *, uint64_t>{"cold", ColdV.WarmupCycles},
          {"warm", Warm.WarmupCycles},
          {"stale", Stale.WarmupCycles}}) {
      if (!Json.empty())
        Json += ",\n";
      Json += formatString("    {\"name\": \"warm_start/%s/%s\", "
                           "\"run_type\": \"iteration\", \"iterations\": 1, "
                           "\"real_time\": %llu, \"cpu_time\": %llu, "
                           "\"time_unit\": \"ns\"}",
                           W.c_str(), LegName,
                           static_cast<unsigned long long>(Warmup),
                           static_cast<unsigned long long>(Warmup));
    }
  }

  bool Pass = true;
  std::printf("\n(* = leg never settled within the run; its warmup is the "
              "last compile-activity cycle)\n");
  std::printf("warm start beat cold start on %u of %zu workloads "
              "(gate: at least 6 of 8)\n",
              WarmFaster, Workloads.size());
  if (WarmFaster < 6) {
    std::printf("warm-start gate FAILED: warm start must reach steady state "
                "sooner than cold on at least 6 workloads\n");
    Pass = false;
  }
  if (!StaleOk) {
    std::printf("stale-profile gate FAILED: a stale leg diverged or never "
                "exercised decay\n");
    Pass = false;
  }
  if (TotalStaleDeopts == 0) {
    std::printf("stale-profile gate FAILED: no stale leg deoptimized — the "
                "walk-back path was never exercised\n");
    Pass = false;
  }
  if (Pass)
    std::printf("warm-start gate passed (stale legs: %llu deopts total)\n",
                static_cast<unsigned long long>(TotalStaleDeopts));

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"context\": {\"scale\": %g},\n  \"benchmarks\": [\n%s"
                 "\n  ]\n}\n",
                 Scale, Json.c_str());
    std::fclose(F);
  }
  return Pass ? 0 : 1;
}
