//===- bench/steady_state.cpp - Steady-state-gated measurement --------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The steady-state gate behind the CI perf job: runs a representative
// workload set (Table 1 personalities plus two adversarial scenarios)
// traced, splits each run into warmup and steady phases with the
// harness's detector, and reports both. Exits nonzero when any *gated*
// run fails to reach steady state — a perf number measured on a run
// that never settled is not a perf number.
//
// Honors AOCI_SCALE like the figure sweeps. The adversarial scenarios
// are reported but not gated: scn-phase-flip flips into a megamorphic
// phase that keeps the compiler busy to the end of the run, so "NOT
// steady" is its *correct* verdict at any scale — the row proves the
// detector refuses to call a phase-flipped run settled, exactly the
// negative property SteadyStateTest pins.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/SteadyState.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

namespace {

struct Entry {
  const char *Workload;
  bool Gated; // Must reach steady state for the gate to pass.
};

const Entry Benchmarks[] = {{"compress", true},
                            {"jess", true},
                            {"db", true},
                            {"mpegaudio", true},
                            {"scn-phase-flip", false},
                            {"scn-megamorphic-storm", false}};

} // namespace

int main() {
  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  bool AllReached = true;
  std::printf("%-22s %12s %12s %12s  %s\n", "workload", "wall Mcy",
              "warmup Mcy", "steady Mcy", "verdict");
  for (const Entry &B : Benchmarks) {
    RunConfig Config;
    Config.WorkloadName = B.Workload;
    Config.Params.Scale = Scale;
    Config.Policy = PolicyKind::Fixed;
    Config.MaxDepth = 3;
    TraceSink Sink;
    Sink.enable(steadyStateKindMask());
    Config.Trace = &Sink;
    const RunResult R = runExperiment(Config);
    const SteadyStateResult V = detectSteadyState(Sink, R.WallCycles);
    if (B.Gated)
      AllReached &= V.Reached;
    std::printf("%-22s %12.2f %12.2f %12.2f  %s (%s)%s\n", B.Workload,
                static_cast<double>(R.WallCycles) / 1e6,
                static_cast<double>(V.WarmupCycles) / 1e6,
                static_cast<double>(V.SteadyCycles) / 1e6,
                V.Reached ? "steady" : "NOT steady", V.Why.c_str(),
                B.Gated ? "" : " [ungated]");
  }
  if (!AllReached) {
    std::printf("steady-state gate FAILED: a gated run never settled; "
                "raise AOCI_SCALE\n");
    return 1;
  }
  std::printf("steady-state gate passed\n");
  return 0;
}
