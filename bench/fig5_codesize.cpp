//===- bench/fig5_codesize.cpp - Regenerates Figure 5 ----------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Runs the full benchmark x policy x depth sweep and prints the Figure 5
// panels (optimized code size change over context-insensitive inlining),
// plus the compile-time companion grid behind the abstract's "10%
// reductions in ... compile time" claim.
//
// Set AOCI_SCALE (e.g. 0.25) to shrink run length for a quick pass and
// AOCI_JOBS to bound the worker threads (default: all hardware threads;
// results are byte-identical for every job count).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reporters.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

int main() {
  GridConfig Config;
  if (const char *Scale = std::getenv("AOCI_SCALE"))
    Config.Params.Scale = std::atof(Scale);
  if (const char *Trials = std::getenv("AOCI_TRIALS"))
    Config.Trials = static_cast<unsigned>(std::atoi(Trials));
  unsigned Jobs = 0;
  if (const char *J = std::getenv("AOCI_JOBS"))
    Jobs = static_cast<unsigned>(std::atoi(J));
  GridResults Results =
      runGridParallel(Config, Jobs, [](const std::string &Line) {
        std::fprintf(stderr, "%s\n", Line.c_str());
      });
  std::printf("%s\n",
              reportFigure5(Results, Config.Policies, Config.Depths).c_str());
  std::printf(
      "%s\n",
      reportCompileTime(Results, Config.Policies, Config.Depths).c_str());
  // Absolute anchors for the relative panels above: "code space" is the
  // resident (live) optimized code; the cumulative-generated figure also
  // counts code obsoleted by recompilation and tracks compile time.
  std::printf("context-insensitive baseline code size (bytes):\n");
  for (const std::string &W : Results.workloads()) {
    const RunResult &B = Results.baseline(W);
    std::printf("  %-12s %llu resident / %llu generated\n", W.c_str(),
                static_cast<unsigned long long>(B.OptBytesResident),
                static_cast<unsigned long long>(B.OptBytesGenerated));
  }
  return 0;
}
