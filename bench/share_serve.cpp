//===- bench/share_serve.cpp - N-session serve vs. N solo sessions ----------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The shared code cache, measured: for every Table 1 workload this runs
// one solo session (runExperiment with the serve session config) and a
// 4-session serve of the same workload, then compares what the two
// actually paid in optimizing-compile cycles. With the default 1-round
// stagger, session 0 publishes every variant and sessions 1..3 hit the
// shared index instead of compiling, so the serve's total compile bill
// should sit far below 4x the solo bill.
//
// The hit rate is structurally below the stagger's naive (N-1)/N = 75%
// expectation on most workloads: a shared hit charges link cycles where
// the publisher paid a full compile, so a hitting session's clock pulls
// ahead of its predecessor's, its samples land at different points, and
// some of its later inline plans — and hence fingerprints — drift away
// from what was published. That drift is the realistic price of the
// protocol, so the gates are aggregate, with a loose per-workload floor.
//
// Gates (exit nonzero on failure):
//   - every serve session computes the same program result as the solo
//     run (sharing is an accounting optimization, never a semantic one);
//   - summed over all workloads, the 4-session serves' shared-index hit
//     rate exceeds 50% and the total compile cycles paid are below 60%
//     of the 4x-solo bill (expectation ~30% at a 75% hit rate);
//   - per workload, the serve pays measurably less than 4x solo
//     (< 80%) — a workload where sharing saves nothing is a regression;
//   - a mixed serve (two compress tenants, a scenario adversary, and
//     db) exports byte-identical CSV and trace bytes at --jobs 1 and
//     --jobs 4.
//
// Honors AOCI_SCALE like the figure sweeps. With --json FILE it also
// writes per-workload compile-cycle bills in google-benchmark JSON
// shape so tools/check_bench_regression.py can gate run-over-run drift
// (BENCH_share.json in CI).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Serve.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace aoci;

namespace {

constexpr unsigned ServeSessions = 4;

/// The serve session configuration, replicated for the solo reference
/// run so its compile bill is directly comparable (same policy, depth,
/// and OSR setting as ServeConfig's defaults).
RunConfig soloConfig(const std::string &Workload, double Scale) {
  const ServeConfig Serve;
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = Serve.Policy;
  Config.MaxDepth = Serve.MaxDepth;
  Config.Aos = Serve.Aos;
  Config.Model = Serve.Model;
  return Config;
}

ServeConfig serveConfig(const std::string &Workload, unsigned Count,
                        double Scale) {
  ServeConfig Config;
  Config.Tenants.push_back({Workload, Count});
  Config.Params.Scale = Scale;
  return Config;
}

} // namespace

int main(int argc, char **argv) {
  // Line-buffer stdout so CI's tee shows per-workload progress live.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "usage: share_serve [--json FILE]\n");
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  bool Pass = true;
  std::string Json;
  uint64_t TotalFourX = 0, TotalPaid = 0, TotalHits = 0, TotalPublishes = 0;

  std::printf("%-14s %12s %12s %12s %9s %8s  %s\n", "workload", "solo cy",
              "4x solo cy", "serve paid", "paid pct", "hit rate", "verdict");
  for (const std::string &W : workloadNames()) {
    const RunResult Solo = runExperiment(soloConfig(W, Scale));
    const ServeResults Serve =
        runServe(serveConfig(W, ServeSessions, Scale), /*Jobs=*/0);

    bool ResultsMatch = Serve.Sessions.size() == ServeSessions;
    for (const ServeSessionResult &S : Serve.Sessions)
      ResultsMatch &= S.ProgramResult == Solo.ProgramResult;

    const uint64_t SoloBill = Solo.OptCompileCycles;
    const uint64_t FourX = SoloBill * ServeSessions;
    const uint64_t Paid = Serve.totalCompileCyclesPaid();
    const double PaidPct = FourX == 0 ? 0.0 : 100.0 * Paid / FourX;
    const double HitRate = Serve.hitRate();
    TotalFourX += FourX;
    TotalPaid += Paid;
    for (const ServeSessionResult &S : Serve.Sessions) {
      TotalHits += S.ShareHits;
      TotalPublishes += S.SharePublishes;
    }

    const bool ThisOk = ResultsMatch && (FourX == 0 || Paid < FourX * 8 / 10);
    Pass &= ThisOk;
    std::printf("%-14s %12llu %12llu %12llu %8.1f%% %7.1f%%  %s%s\n",
                W.c_str(), static_cast<unsigned long long>(SoloBill),
                static_cast<unsigned long long>(FourX),
                static_cast<unsigned long long>(Paid), PaidPct,
                100.0 * HitRate, ThisOk ? "ok" : "FAILED",
                ResultsMatch ? "" : " (result mismatch)");

    for (const auto &[LegName, Cycles] :
         {std::pair<const char *, uint64_t>{"solo", SoloBill},
          {"serve_paid", Paid},
          {"serve_saved", Serve.totalCompileCyclesSaved()}}) {
      if (!Json.empty())
        Json += ",\n";
      Json += formatString("    {\"name\": \"share_serve/%s/%s\", "
                           "\"run_type\": \"iteration\", \"iterations\": 1, "
                           "\"real_time\": %llu, \"cpu_time\": %llu, "
                           "\"time_unit\": \"ns\"}",
                           W.c_str(), LegName,
                           static_cast<unsigned long long>(Cycles),
                           static_cast<unsigned long long>(Cycles));
    }
  }

  // Determinism leg: a mixed tenant set (including a scenario
  // adversary) must export byte-identical CSV and trace at any job
  // count. Runs at a capped scale — the verdict is byte equality, and
  // the two extra serves add no signal at full scale.
  {
    const double MixScale = std::min(Scale, 0.3);
    ServeConfig Mix;
    Mix.Tenants = {{"compress", 2}, {"scn-phase-flip", 1}, {"db", 1}};
    Mix.Params.Scale = MixScale;
    Mix.Trace = true;
    const ServeResults Serial = runServe(Mix, /*Jobs=*/1);
    const ServeResults Parallel = runServe(Mix, /*Jobs=*/4);
    std::ostringstream SerialTrace, ParallelTrace;
    exportServeTrace(SerialTrace, Serial);
    exportServeTrace(ParallelTrace, Parallel);
    const bool CsvSame = exportServeCsv(Serial) == exportServeCsv(Parallel);
    const bool TraceSame = SerialTrace.str() == ParallelTrace.str();
    std::printf("\nmixed-tenant determinism (--jobs 1 vs 4): csv %s, "
                "trace %s\n",
                CsvSame ? "identical" : "DIVERGED",
                TraceSame ? "identical" : "DIVERGED");
    Pass &= CsvSame && TraceSame;
  }

  const double TotalHitRate =
      TotalHits + TotalPublishes == 0
          ? 0.0
          : static_cast<double>(TotalHits) / (TotalHits + TotalPublishes);
  const double TotalPaidPct =
      TotalFourX == 0 ? 0.0 : 100.0 * TotalPaid / TotalFourX;
  std::printf("aggregate: %.1f%% hit rate (gate: > 50%%), paid %.1f%% of "
              "the 4x-solo bill (gate: < 60%%)\n",
              100.0 * TotalHitRate, TotalPaidPct);
  if (TotalHitRate <= 0.5) {
    std::printf("share-serve gate FAILED: aggregate hit rate at or below "
                "50%%\n");
    Pass = false;
  }
  if (TotalFourX != 0 && TotalPaid >= TotalFourX * 6 / 10) {
    std::printf("share-serve gate FAILED: serve paid 60%% or more of the "
                "4x-solo compile bill\n");
    Pass = false;
  }
  if (Pass)
    std::printf("share-serve gate passed\n");
  else
    std::printf("share-serve gate FAILED\n");

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"context\": {\"scale\": %g},\n  \"benchmarks\": [\n%s"
                 "\n  ]\n}\n",
                 Scale, Json.c_str());
    std::fclose(F);
  }
  return Pass ? 0 : 1;
}
