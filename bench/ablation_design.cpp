//===- bench/ablation_design.cpp - Design-choice ablations ------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Ablates the design choices DESIGN.md calls out, on three benchmarks
// with distinct personalities (jess, db, SPECjbb2000):
//
//  1. the 1.5% hot-trace threshold (0.5% / 1.5% / 5%) — profile dilution
//     sensitivity;
//  2. the decay organizer on/off — phase adaptivity (jbb shifts phases
//     mid-run);
//  3. the inline-aware stack walk of Section 3.3 vs the naive
//     physical-frame walk — how much misattributed traces cost;
//  4. the OSR subsystem (src/osr/) on/off, on the loop-dominated pair
//     (compress, mpegaudio) — how much transferring long-running
//     activations shortens time-to-steady-state, i.e. the stretch of the
//     run still executing in superseded code after its replacement was
//     compiled.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/StringUtils.h"
#include "trace/TraceSink.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

namespace {

const char *Benchmarks[] = {"jess", "db", "SPECjbb2000"};

RunResult runWith(const std::string &Workload, double Scale,
                  const std::function<void(RunConfig &)> &Tweak) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Tweak(Config);
  return runExperiment(Config);
}

void printRow(const char *Label, const RunResult &R,
              const RunResult &Reference) {
  std::printf("  %-24s wall %12llu (%s)  resident %7llu (%s)  "
              "fallbacks %8llu\n",
              Label, static_cast<unsigned long long>(R.WallCycles),
              formatPercent((static_cast<double>(Reference.WallCycles) /
                                 static_cast<double>(R.WallCycles) -
                             1.0) *
                            100.0)
                  .c_str(),
              static_cast<unsigned long long>(R.OptBytesResident),
              formatPercent(
                  (static_cast<double>(R.OptBytesResident) /
                       static_cast<double>(Reference.OptBytesResident) -
                   1.0) *
                  100.0)
                  .c_str(),
              static_cast<unsigned long long>(R.GuardFallbacks));
}

/// Clock cycle when the last optimizing compilation finished — the point
/// after which the *code* is steady. With OSR off, activations already
/// live in superseded variants keep running stale code past this point;
/// with OSR on they transfer at their next backedge, so the gap between
/// this cycle and the end of the run is served by current code.
uint64_t lastCompileCycle(const TraceSink &Sink) {
  uint64_t Last = 0;
  Sink.forEach([&](const TraceEvent &E) {
    if (E.Cycle + E.Dur > Last)
      Last = E.Cycle + E.Dur;
  });
  return Last;
}

void ablateOsr(double Scale) {
  for (const char *W : {"compress", "mpegaudio"}) {
    std::printf("== %s (fixed, max depth 3; OSR ablation) ==\n", W);
    RunResult Results[2];
    uint64_t SteadyAt[2] = {0, 0};
    for (int On = 0; On != 2; ++On) {
      TraceSink Sink;
      Sink.enable(traceKindBit(TraceEventKind::CompileComplete));
      Results[On] = runWith(W, Scale, [&](RunConfig &C) {
        C.Aos.Osr.Enabled = On != 0;
        C.Trace = &Sink;
      });
      SteadyAt[On] = lastCompileCycle(Sink);
    }
    const RunResult &Off = Results[0], &On = Results[1];
    // Cycles spent after the last compile: the tail both configurations
    // run in steady code shape — OSR shrinks the total by moving live
    // activations into that shape instead of waiting for re-invocation.
    std::printf("  %-24s wall %12llu  post-compile tail %12llu\n", "osr off",
                static_cast<unsigned long long>(Off.WallCycles),
                static_cast<unsigned long long>(Off.WallCycles - SteadyAt[0]));
    std::printf("  %-24s wall %12llu  post-compile tail %12llu\n", "osr on",
                static_cast<unsigned long long>(On.WallCycles),
                static_cast<unsigned long long>(On.WallCycles - SteadyAt[1]));
    std::printf("  %-24s %s wall (%lld cycles); %llu osr entries, %llu "
                "deopts, %llu transition cycles, ~%llu recovered\n",
                "delta",
                formatPercent((static_cast<double>(Off.WallCycles) /
                                   static_cast<double>(On.WallCycles) -
                               1.0) *
                              100.0)
                    .c_str(),
                static_cast<long long>(Off.WallCycles) -
                    static_cast<long long>(On.WallCycles),
                static_cast<unsigned long long>(On.OsrEntries),
                static_cast<unsigned long long>(On.Deopts),
                static_cast<unsigned long long>(On.OsrTransitionCycles),
                static_cast<unsigned long long>(On.OsrCyclesRecovered));
    std::printf("\n");
  }
}

} // namespace

int main() {
  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  for (const char *W : Benchmarks) {
    std::printf("== %s (fixed, max depth 3; deltas are speedup vs the "
                "default configuration) ==\n",
                W);
    RunResult Default = runWith(W, Scale, [](RunConfig &) {});
    printRow("default (1.5%, decay, aware)", Default, Default);

    for (double Threshold : {0.005, 0.05}) {
      RunResult R = runWith(W, Scale, [&](RunConfig &C) {
        C.Aos.Ai.HotTraceThreshold = Threshold;
      });
      printRow(formatString("threshold %.1f%%", Threshold * 100).c_str(),
               R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.DecayPeriodSamples = 0; // Disable the decay organizer.
      });
      printRow("no decay organizer", R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.InlineAwareWalk = false; // Naive Section 3.3 walk.
      });
      printRow("naive stack walk", R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.DeepMissingEdges = true; // Chain-position organizer ext.
      });
      printRow("deep missing edges", R, Default);
    }
    std::printf("\n");
  }

  ablateOsr(Scale);
  return 0;
}
