//===- bench/ablation_design.cpp - Design-choice ablations ------------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Ablates the design choices DESIGN.md calls out, on three benchmarks
// with distinct personalities (jess, db, SPECjbb2000):
//
//  1. the 1.5% hot-trace threshold (0.5% / 1.5% / 5%) — profile dilution
//     sensitivity;
//  2. the decay organizer on/off — phase adaptivity (jbb shifts phases
//     mid-run);
//  3. the inline-aware stack walk of Section 3.3 vs the naive
//     physical-frame walk — how much misattributed traces cost.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

namespace {

const char *Benchmarks[] = {"jess", "db", "SPECjbb2000"};

RunResult runWith(const std::string &Workload, double Scale,
                  const std::function<void(RunConfig &)> &Tweak) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Tweak(Config);
  return runExperiment(Config);
}

void printRow(const char *Label, const RunResult &R,
              const RunResult &Reference) {
  std::printf("  %-24s wall %12llu (%s)  resident %7llu (%s)  "
              "fallbacks %8llu\n",
              Label, static_cast<unsigned long long>(R.WallCycles),
              formatPercent((static_cast<double>(Reference.WallCycles) /
                                 static_cast<double>(R.WallCycles) -
                             1.0) *
                            100.0)
                  .c_str(),
              static_cast<unsigned long long>(R.OptBytesResident),
              formatPercent(
                  (static_cast<double>(R.OptBytesResident) /
                       static_cast<double>(Reference.OptBytesResident) -
                   1.0) *
                  100.0)
                  .c_str(),
              static_cast<unsigned long long>(R.GuardFallbacks));
}

} // namespace

int main() {
  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  for (const char *W : Benchmarks) {
    std::printf("== %s (fixed, max depth 3; deltas are speedup vs the "
                "default configuration) ==\n",
                W);
    RunResult Default = runWith(W, Scale, [](RunConfig &) {});
    printRow("default (1.5%, decay, aware)", Default, Default);

    for (double Threshold : {0.005, 0.05}) {
      RunResult R = runWith(W, Scale, [&](RunConfig &C) {
        C.Aos.Ai.HotTraceThreshold = Threshold;
      });
      printRow(formatString("threshold %.1f%%", Threshold * 100).c_str(),
               R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.DecayPeriodSamples = 0; // Disable the decay organizer.
      });
      printRow("no decay organizer", R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.InlineAwareWalk = false; // Naive Section 3.3 walk.
      });
      printRow("naive stack walk", R, Default);
    }
    {
      RunResult R = runWith(W, Scale, [](RunConfig &C) {
        C.Aos.DeepMissingEdges = true; // Chain-position organizer ext.
      });
      printRow("deep missing edges", R, Default);
    }
    std::printf("\n");
  }
  return 0;
}
