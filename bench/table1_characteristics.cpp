//===- bench/table1_characteristics.cpp - Regenerates Table 1 --------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Runs every benchmark once under the context-insensitive configuration
// and prints Table 1: classes loaded, methods and bytecodes dynamically
// compiled, next to the paper's reference values.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reporters.h"

#include <cstdio>

using namespace aoci;

namespace {

struct PaperRow {
  const char *Name;
  unsigned Classes;
  unsigned Methods;
  unsigned Bytecodes;
};

// Table 1 of the paper.
const PaperRow PaperTable[] = {
    {"compress", 48, 489, 19480},   {"jess", 176, 1101, 35316},
    {"db", 41, 510, 20495},         {"javac", 176, 1496, 56282},
    {"mpegaudio", 85, 712, 51308},  {"mtrt", 62, 629, 24435},
    {"jack", 86, 743, 36253},       {"SPECjbb2000", 132, 1778, 73608},
};

} // namespace

int main() {
  std::vector<RunResult> Runs;
  for (const std::string &Name : workloadNames()) {
    RunConfig Config;
    Config.WorkloadName = Name;
    Runs.push_back(runExperiment(Config));
  }
  std::printf("%s\n", reportTable1(Runs).c_str());

  std::printf("Paper reference values:\n");
  std::printf("%-12s %8s %8s %10s\n", "Benchmark", "Classes", "Methods",
              "Bytecodes");
  for (const PaperRow &Row : PaperTable)
    std::printf("%-12s %8u %8u %10u\n", Row.Name, Row.Classes, Row.Methods,
                Row.Bytecodes);
  return 0;
}
