//===- bench/budget_inline.cpp - Budget vs. threshold organizer -------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// The budget organizer's head-to-head against the paper's 1.5%-threshold
// organizer: for every Table 1 workload this runs one leg under each
// organizer (same policy, depth, and jitter seed — deriveRunSeed ignores
// the organizer kind, so the timer streams are comparable) and compares
// time-to-steady-state with the harness's detector. Two adversarial
// scenarios ride along ungated: scn-phase-flip never settles by design,
// and scn-megamorphic-storm floods the DCG with candidates, which is
// exactly the profile the budgets exist to contain — their rows document
// behaviour under stress rather than gate it.
//
// Gate (exit nonzero on failure): the budget leg reaches steady state no
// later than the threshold leg on at least 4 of the 8 Table 1 workloads.
// A threshold leg that never settles is a censored observation; the
// budget leg wins it by settling at all.
//
// Honors AOCI_SCALE like the figure sweeps. With --json FILE it writes
// per-leg warmup cycles in google-benchmark JSON shape so
// tools/check_bench_regression.py can gate run-over-run drift
// (BENCH_budget.json in CI).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/SteadyState.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace aoci;

namespace {

struct Leg {
  uint64_t WallCycles = 0;
  uint64_t WarmupCycles = 0;
  bool SteadyReached = false;
  uint64_t OptBytesGenerated = 0;
  uint64_t BudgetUnitsSpent = 0;
  uint64_t BudgetCandidatesPruned = 0;
  double EstimateErrorPct = 0.0;
};

Leg runLeg(const std::string &Workload, double Scale,
           InlineOrganizerKind Organizer) {
  RunConfig Config;
  Config.WorkloadName = Workload;
  Config.Params.Scale = Scale;
  Config.Policy = PolicyKind::Fixed;
  Config.MaxDepth = 3;
  Config.Aos.Organizer = Organizer;
  TraceSink Sink;
  Sink.enable(steadyStateKindMask());
  Config.Trace = &Sink;
  const RunResult R = runExperiment(Config);
  const SteadyStateResult V = detectSteadyState(Sink, R.WallCycles);
  Leg L;
  L.WallCycles = R.WallCycles;
  L.WarmupCycles = V.WarmupCycles;
  L.SteadyReached = V.Reached;
  L.OptBytesGenerated = R.OptBytesGenerated;
  L.BudgetUnitsSpent = R.BudgetUnitsSpent;
  L.BudgetCandidatesPruned = R.BudgetCandidatesPruned;
  L.EstimateErrorPct = R.EstimateErrorPct;
  return L;
}

struct Entry {
  const char *Workload;
  bool Gated; // Table 1 rows gate; scenario adversaries only report.
};

const Entry Adversaries[] = {{"scn-phase-flip", false},
                             {"scn-megamorphic-storm", false}};

} // namespace

int main(int argc, char **argv) {
  // Line-buffer stdout so CI's tee shows per-workload progress live.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "usage: budget_inline [--json FILE]\n");
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  std::vector<Entry> Benchmarks;
  for (const std::string &W : workloadNames())
    Benchmarks.push_back({W.c_str(), true});
  for (const Entry &A : Adversaries)
    Benchmarks.push_back(A);

  unsigned BudgetWins = 0, Gated = 0;
  std::string Json;
  std::printf("%-22s %14s %14s %12s %10s %8s  %s\n", "workload",
              "thresh warmup", "budget warmup", "units spent", "pruned",
              "est err", "verdict");
  for (const Entry &B : Benchmarks) {
    const Leg Thresh = runLeg(B.Workload, Scale, InlineOrganizerKind::Threshold);
    const Leg Budget = runLeg(B.Workload, Scale, InlineOrganizerKind::Budget);

    // A budget win/tie: the budget leg settles no later than threshold,
    // or threshold never settles at all (censored — its time-to-steady-
    // state exceeds the wall the budget leg's warmup is already below).
    const bool ThreshCensored =
        !Thresh.SteadyReached && Budget.WarmupCycles < Thresh.WallCycles;
    const bool Win =
        Budget.SteadyReached &&
        (ThreshCensored ||
         (Thresh.SteadyReached &&
          Budget.WarmupCycles <= Thresh.WarmupCycles));
    if (B.Gated) {
      ++Gated;
      BudgetWins += Win ? 1 : 0;
    }
    std::printf("%-22s %13llu%s %13llu%s %12llu %10llu %7.1f%%  %s%s\n",
                B.Workload,
                static_cast<unsigned long long>(Thresh.WarmupCycles),
                Thresh.SteadyReached ? " " : "*",
                static_cast<unsigned long long>(Budget.WarmupCycles),
                Budget.SteadyReached ? " " : "*",
                static_cast<unsigned long long>(Budget.BudgetUnitsSpent),
                static_cast<unsigned long long>(Budget.BudgetCandidatesPruned),
                Budget.EstimateErrorPct,
                Win ? "budget" : "threshold",
                B.Gated ? "" : " [ungated]");

    // One google-benchmark row per leg; "real_time" carries simulated
    // warmup cycles so the regression gate tracks time-to-steady-state.
    for (const auto &[LegName, Warmup] :
         {std::pair<const char *, uint64_t>{"threshold", Thresh.WarmupCycles},
          {"budget", Budget.WarmupCycles}}) {
      if (!Json.empty())
        Json += ",\n";
      Json += formatString("    {\"name\": \"budget_inline/%s/%s\", "
                           "\"run_type\": \"iteration\", \"iterations\": 1, "
                           "\"real_time\": %llu, \"cpu_time\": %llu, "
                           "\"time_unit\": \"ns\"}",
                           B.Workload, LegName,
                           static_cast<unsigned long long>(Warmup),
                           static_cast<unsigned long long>(Warmup));
    }
  }

  std::printf("\n(* = leg never settled within the run; its warmup is the "
              "last compile-activity cycle)\n");
  std::printf("budget organizer beat or tied threshold on %u of %u Table 1 "
              "workloads (gate: at least 4 of %u)\n",
              BudgetWins, Gated, Gated);
  const bool Pass = BudgetWins >= 4;
  if (!Pass)
    std::printf("budget-organizer gate FAILED: the budget organizer must "
                "reach steady state no later than the threshold organizer "
                "on at least 4 workloads\n");
  else
    std::printf("budget-organizer gate passed\n");

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"context\": {\"scale\": %g},\n  \"benchmarks\": [\n%s"
                 "\n  ]\n}\n",
                 Scale, Json.c_str());
    std::fclose(F);
  }
  return Pass ? 0 : 1;
}
