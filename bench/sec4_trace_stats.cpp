//===- bench/sec4_trace_stats.cpp - Regenerates the Section 4 stats --------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// Reproduces the instrumentation results of Section 4: runs every
// benchmark with the instrumented trace listener under a deep fixed
// policy and prints, per benchmark, the fraction of sampled callees that
// are immediately parameterless, the fraction of chains containing a
// parameterless call within five levels, a class (static) method within
// two edges, and a large method at four or more edges.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reporters.h"

#include <cstdio>
#include <cstdlib>

using namespace aoci;

int main() {
  double Scale = 1.0;
  if (const char *S = std::getenv("AOCI_SCALE"))
    Scale = std::atof(S);

  std::vector<RunResult> Runs;
  for (const std::string &Name : workloadNames()) {
    RunConfig Config;
    Config.WorkloadName = Name;
    Config.Params.Scale = Scale;
    // A deep fixed policy records full chains; the chain statistics
    // themselves are policy-independent instrumentation.
    Config.Policy = PolicyKind::Fixed;
    Config.MaxDepth = 5;
    Config.CollectTraceStats = true;
    Runs.push_back(runExperiment(Config));
    std::fprintf(stderr, "%s done\n", Name.c_str());
  }
  std::printf("%s\n", reportSection4(Runs).c_str());

  // Aggregate over the suite, matching the paper's phrasing.
  uint64_t Samples = 0;
  double CalleeParamless = 0, ParamWithin5 = 0, ClassWithin2 = 0,
         LargeAt4 = 0;
  for (const RunResult &R : Runs) {
    Samples += R.TraceStats.numSamples();
    CalleeParamless += R.TraceStats.calleeParameterlessFraction();
    ParamWithin5 += R.TraceStats.parameterlessWithin(5);
    ClassWithin2 += R.TraceStats.classMethodWithin(2);
    LargeAt4 += R.TraceStats.largeMethodAtOrBeyond(4);
  }
  double N = static_cast<double>(Runs.size());
  std::printf("Suite averages (paper: ~20%%; 50-80%%; 50-80%%; ~50%%):\n");
  std::printf("  callees immediately parameterless: %.0f%%\n",
              CalleeParamless / N * 100);
  std::printf("  parameterless call within 5 levels: %.0f%%\n",
              ParamWithin5 / N * 100);
  std::printf("  class method within 2 edges:        %.0f%%\n",
              ClassWithin2 / N * 100);
  std::printf("  large method at 4+ edges:           %.0f%%\n",
              LargeAt4 / N * 100);
  std::printf("  total prologue samples:             %llu\n",
              static_cast<unsigned long long>(Samples));
  return 0;
}
