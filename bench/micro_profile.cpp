//===- bench/micro_profile.cpp - Profile data-structure microbenchmarks ----===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// google-benchmark microbenchmarks for the profile substrate: dynamic
// call graph insertion at varying context depths, rule-set partial-match
// queries (Equation 3), calling-context-tree insertion, and decay. These
// back the paper's claim that the context-sensitive machinery is cheap
// enough for online use.
//
//===----------------------------------------------------------------------===//

#include "profile/CallingContextTree.h"
#include "profile/DynamicCallGraph.h"
#include "profile/InlineRules.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace aoci;

namespace {

/// Deterministic pool of traces at the requested depth.
std::vector<Trace> makeTraces(unsigned Depth, size_t Count) {
  Rng R(Depth * 1000003 + Count);
  std::vector<Trace> Traces;
  Traces.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    Trace T;
    T.Callee = static_cast<MethodId>(R.nextBelow(200));
    for (unsigned D = 0; D != Depth; ++D)
      T.Context.push_back(
          ContextPair{static_cast<MethodId>(R.nextBelow(100)),
                      static_cast<BytecodeIndex>(R.nextBelow(30))});
    Traces.push_back(std::move(T));
  }
  return Traces;
}

void BM_DcgAddSample(benchmark::State &State) {
  const unsigned Depth = static_cast<unsigned>(State.range(0));
  std::vector<Trace> Traces = makeTraces(Depth, 512);
  DynamicCallGraph Dcg;
  size_t I = 0;
  for (auto _ : State) {
    Dcg.addSample(Traces[I % Traces.size()]);
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DcgAddSample)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

void BM_DcgDecay(benchmark::State &State) {
  std::vector<Trace> Traces = makeTraces(3, 2048);
  for (auto _ : State) {
    State.PauseTiming();
    DynamicCallGraph Dcg;
    for (const Trace &T : Traces)
      Dcg.addSample(T, 100.0);
    State.ResumeTiming();
    Dcg.decay(0.95);
    benchmark::DoNotOptimize(Dcg.totalWeight());
  }
}
BENCHMARK(BM_DcgDecay);

void BM_RuleSetApplicableQuery(benchmark::State &State) {
  const unsigned Depth = static_cast<unsigned>(State.range(0));
  std::vector<Trace> Traces = makeTraces(Depth, 256);
  InlineRuleSet Rules;
  for (const Trace &T : Traces) {
    InliningRule Rule;
    Rule.T = T;
    Rule.Weight = 10;
    Rules.add(std::move(Rule));
  }
  size_t I = 0;
  for (auto _ : State) {
    const Trace &T = Traces[I % Traces.size()];
    benchmark::DoNotOptimize(Rules.applicableRules(T.Context));
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RuleSetApplicableQuery)->Arg(1)->Arg(3)->Arg(5);

void BM_CctAddSample(benchmark::State &State) {
  std::vector<Trace> Traces = makeTraces(4, 512);
  CallingContextTree Cct;
  size_t I = 0;
  for (auto _ : State) {
    Cct.addSample(Traces[I % Traces.size()]);
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CctAddSample);

void BM_PartialContextMatch(benchmark::State &State) {
  std::vector<Trace> Traces = makeTraces(5, 64);
  size_t I = 0;
  for (auto _ : State) {
    const Trace &A = Traces[I % Traces.size()];
    const Trace &B = Traces[(I + 1) % Traces.size()];
    benchmark::DoNotOptimize(partialContextMatch(A.Context, B.Context));
    ++I;
  }
}
BENCHMARK(BM_PartialContextMatch);

} // namespace

BENCHMARK_MAIN();
