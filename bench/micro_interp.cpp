//===- bench/micro_interp.cpp - VM substrate microbenchmarks ---------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// google-benchmark microbenchmarks for the VM substrate: interpreter
// throughput on arithmetic and call-heavy code, inline-plan dispatch, and
// the optimizing compiler itself.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "opt/Compiler.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"
#include "workload/WorkloadCommon.h"

#include <benchmark/benchmark.h>

using namespace aoci;

namespace {

Program arithProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  CodeEmitter E = B.code(Main);
  E.iconst(0).store(1);
  emitCountedLoop(E, 0, Iterations, [](CodeEmitter &L) {
    L.load(1).iconst(3).imul().iconst(7).iadd().iconst(11).irem().store(1);
  });
  E.load(1).vreturn();
  E.finish();
  B.setEntry(Main);
  return B.build();
}

Program callProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Leaf = B.declareMethod(C, "leaf", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(Leaf);
    E.load(0).iconst(1).iadd().vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    E.iconst(0).store(1);
    emitCountedLoop(E, 0, Iterations, [&](CodeEmitter &L) {
      L.load(1).invokeStatic(Leaf).store(1);
    });
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

/// Superinstruction fusion enabled down to baseline variants. Fusion is
/// clock-neutral (FingerprintTest pins that), so every Fused benchmark
/// below simulates the identical cycle count as its unfused twin; the
/// delta the pair measures is pure host dispatch overhead. Pairs are
/// registered adjacently so one `--benchmark_filter=Interp` run is an
/// interleaved A/B on the same warmed-up process.
CostModel fusedModel() {
  CostModel Model;
  Model.Fuse.Enabled = true;
  Model.Fuse.MinLevel = 0;
  return Model;
}

/// Loop whose body is one long straight-line chain of fusable bytecodes
/// (no calls, no branches): the best case for batched handlers, where
/// dozens of switch dispatches collapse into one fused-handler call per
/// iteration. This is the headline fused-vs-unfused comparison.
Program straightLineProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  CodeEmitter E = B.code(Main);
  E.iconst(0).store(1).iconst(1).store(2).iconst(7).store(3);
  emitCountedLoop(E, 0, Iterations, [](CodeEmitter &L) {
    // Three dependent accumulator chains plus stack shuffles: ~40
    // fusable instructions between backedges.
    L.load(1).iconst(3).imul().iconst(7).iadd().iconst(9973).irem().store(1);
    L.load(2).load(1).ixor().iconst(5).ishl().iconst(3).ishr().store(2);
    L.load(3).load(2).iand().load(1).ior().iconst(1).iadd().store(3);
    L.load(1).load(2).swap().isub().load(3).iadd().iconst(8191).irem().store(1);
    L.load(2).dup().imul().iconst(127).iand().store(2);
  });
  E.load(1).load(2).iadd().load(3).iadd().vreturn();
  E.finish();
  B.setEntry(Main);
  return B.build();
}

void runInterp(benchmark::State &State, const Program &P,
               const CostModel &Model, int64_t Items) {
  for (auto _ : State) {
    VirtualMachine VM(P, Model);
    VM.addThread(P.entryMethod());
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * Items);
}

void BM_InterpStraightLineLoop(benchmark::State &State) {
  Program P = straightLineProgram(10000);
  runInterp(State, P, CostModel(), 10000);
}
BENCHMARK(BM_InterpStraightLineLoop);

void BM_InterpStraightLineLoopFused(benchmark::State &State) {
  Program P = straightLineProgram(10000);
  runInterp(State, P, fusedModel(), 10000);
}
BENCHMARK(BM_InterpStraightLineLoopFused);

void BM_InterpArithmeticLoop(benchmark::State &State) {
  Program P = arithProgram(10000);
  runInterp(State, P, CostModel(), 10000);
}
BENCHMARK(BM_InterpArithmeticLoop);

void BM_InterpArithmeticLoopFused(benchmark::State &State) {
  Program P = arithProgram(10000);
  runInterp(State, P, fusedModel(), 10000);
}
BENCHMARK(BM_InterpArithmeticLoopFused);

void BM_InterpCallLoop(benchmark::State &State) {
  Program P = callProgram(10000);
  runInterp(State, P, CostModel(), 10000);
}
BENCHMARK(BM_InterpCallLoop);

void BM_InterpCallLoopFused(benchmark::State &State) {
  // Call-dominated code is fusion's worst case: runs are short (invokes
  // break them) and the win must not turn into a loss beyond noise.
  Program P = callProgram(10000);
  runInterp(State, P, fusedModel(), 10000);
}
BENCHMARK(BM_InterpCallLoopFused);

void runInlinedCallLoop(benchmark::State &State, const CostModel &Model) {
  Program P = callProgram(10000);
  MethodId Main = P.entryMethod();
  MethodId Leaf = P.findMethod("Main.leaf");
  ClassHierarchy CH(P);
  OptimizingCompiler Compiler(P, CH, Model);
  StaticOracle Oracle(P, CH);
  for (auto _ : State) {
    VirtualMachine VM(P, Model);
    VM.codeManager().install(
        Compiler.compile(Main, OptLevel::Opt2, Oracle));
    VM.addThread(Main);
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
  (void)Leaf;
}

void BM_InterpInlinedCallLoop(benchmark::State &State) {
  runInlinedCallLoop(State, CostModel());
}
BENCHMARK(BM_InterpInlinedCallLoop);

void BM_InterpInlinedCallLoopFused(benchmark::State &State) {
  runInlinedCallLoop(State, fusedModel());
}
BENCHMARK(BM_InterpInlinedCallLoopFused);

/// Monomorphic virtual-call loop: one receiver object, one invokevirtual
/// site. Exercises the per-site inline cache (every iteration after the
/// first is an IC hit that skips the hierarchy walk).
Program virtualProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId A = B.addClass("A");
  MethodId F = B.declareMethod(A, "f", MethodKind::Virtual, 1, true);
  {
    CodeEmitter E = B.code(F);
    E.load(1).iconst(1).iadd().vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(A, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    E.newObject(A).store(2);
    E.iconst(0).store(1);
    emitCountedLoop(E, 0, Iterations, [&](CodeEmitter &L) {
      L.load(2).load(1).invokeVirtual(F).store(1);
    });
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

void BM_InterpVirtualDispatchLoop(benchmark::State &State) {
  Program P = virtualProgram(10000);
  runInterp(State, P, CostModel(), 10000);
}
BENCHMARK(BM_InterpVirtualDispatchLoop);

void BM_InterpVirtualDispatchLoopFused(benchmark::State &State) {
  Program P = virtualProgram(10000);
  runInterp(State, P, fusedModel(), 10000);
}
BENCHMARK(BM_InterpVirtualDispatchLoopFused);

/// Guarded-inline loop with alternating receivers: half the iterations hit
/// the guard and run the inlined body, half fail every guard and take the
/// fallback virtual invocation — the two hot paths of Section 3.1 dispatch.
struct GuardedProgram {
  Program P;
  MethodId Main = InvalidMethodId;
  MethodId Inlinee = InvalidMethodId;
  BytecodeIndex CallSite = 0;
};

GuardedProgram guardedProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId A = B.addClass("A");
  MethodId F = B.declareMethod(A, "f", MethodKind::Virtual, 0, true);
  {
    CodeEmitter E = B.code(F);
    E.iconst(1).vreturn();
    E.finish();
  }
  ClassId C = B.addClass("C", A);
  MethodId CF = B.addOverride(C, F);
  {
    CodeEmitter E = B.code(CF);
    E.iconst(2).vreturn();
    E.finish();
  }
  GuardedProgram G;
  MethodId Main = B.declareMethod(A, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    auto Top = E.newLabel();
    auto Exit = E.newLabel();
    auto UseA = E.newLabel();
    auto Dispatch = E.newLabel();
    E.iconst(Iterations).store(0).iconst(0).store(1);
    E.bind(Top);
    E.load(0).ifZero(Exit);
    E.load(0).iconst(2).irem().ifZero(UseA);
    E.newObject(C).jump(Dispatch);
    E.bind(UseA);
    E.newObject(A);
    E.bind(Dispatch);
    G.CallSite = E.nextIndex();
    E.invokeVirtual(F);
    E.load(1).iadd().store(1);
    E.load(0).iconst(1).isub().store(0);
    E.jump(Top);
    E.bind(Exit);
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  G.P = B.build();
  G.Main = Main;
  G.Inlinee = CF;
  return G;
}

void runGuardedInlineLoop(benchmark::State &State, const CostModel &Model) {
  GuardedProgram G = guardedProgram(10000);
  for (auto _ : State) {
    VirtualMachine VM(G.P, Model);
    const uint32_t BodyUnits = G.P.method(G.Inlinee).machineSize();
    InlinePlan Plan;
    InlineCase Case;
    Case.Callee = G.Inlinee;
    Case.Guarded = true;
    Case.BodyUnits = BodyUnits;
    Plan.Root.getOrCreate(G.CallSite).Cases.push_back(std::move(Case));
    Plan.recountStatistics();
    Plan.TotalUnits = G.P.method(G.Main).machineSize() + BodyUnits;
    auto V = std::make_unique<CodeVariant>();
    V->M = G.Main;
    V->Level = OptLevel::Opt2;
    V->MachineUnits = Plan.TotalUnits;
    V->CodeBytes = Model.codeBytes(OptLevel::Opt2, V->MachineUnits);
    V->Plan = std::move(Plan);
    VM.codeManager().install(std::move(V));
    VM.addThread(G.P.entryMethod());
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}

void BM_InterpGuardedInlineLoop(benchmark::State &State) {
  runGuardedInlineLoop(State, CostModel());
}
BENCHMARK(BM_InterpGuardedInlineLoop);

void BM_InterpGuardedInlineLoopFused(benchmark::State &State) {
  runGuardedInlineLoop(State, fusedModel());
}
BENCHMARK(BM_InterpGuardedInlineLoopFused);

void BM_OptCompileFigureOneRunTest(benchmark::State &State) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);
  InlineRuleSet Rules;
  {
    InliningRule R1;
    R1.T.Context = {{F.RunTest, F.GetSite1}};
    R1.T.Callee = F.Get;
    R1.Weight = 50;
    Rules.add(std::move(R1));
    InliningRule R2;
    R2.T.Context = {{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}};
    R2.T.Callee = F.MyKeyHashCode;
    R2.Weight = 50;
    Rules.add(std::move(R2));
  }
  ProfileDirectedOracle Oracle(F.P, CH, Rules);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Compiler.compile(F.RunTest, OptLevel::Opt2, Oracle));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_OptCompileFigureOneRunTest);

} // namespace

BENCHMARK_MAIN();
