//===- bench/micro_interp.cpp - VM substrate microbenchmarks ---------------===//
//
// Part of the AOCI project: a reproduction of "Adaptive Online
// Context-Sensitive Inlining" (Hazelwood & Grove, CGO 2003).
//
// google-benchmark microbenchmarks for the VM substrate: interpreter
// throughput on arithmetic and call-heavy code, inline-plan dispatch, and
// the optimizing compiler itself.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ProgramBuilder.h"
#include "opt/Compiler.h"
#include "vm/VirtualMachine.h"
#include "workload/FigureOne.h"
#include "workload/WorkloadCommon.h"

#include <benchmark/benchmark.h>

using namespace aoci;

namespace {

Program arithProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  CodeEmitter E = B.code(Main);
  E.iconst(0).store(1);
  emitCountedLoop(E, 0, Iterations, [](CodeEmitter &L) {
    L.load(1).iconst(3).imul().iconst(7).iadd().iconst(11).irem().store(1);
  });
  E.load(1).vreturn();
  E.finish();
  B.setEntry(Main);
  return B.build();
}

Program callProgram(int64_t Iterations) {
  ProgramBuilder B;
  ClassId C = B.addClass("Main");
  MethodId Leaf = B.declareMethod(C, "leaf", MethodKind::Static, 1, true);
  {
    CodeEmitter E = B.code(Leaf);
    E.load(0).iconst(1).iadd().vreturn();
    E.finish();
  }
  MethodId Main = B.declareMethod(C, "main", MethodKind::Static, 0, true);
  {
    CodeEmitter E = B.code(Main);
    E.iconst(0).store(1);
    emitCountedLoop(E, 0, Iterations, [&](CodeEmitter &L) {
      L.load(1).invokeStatic(Leaf).store(1);
    });
    E.load(1).vreturn();
    E.finish();
  }
  B.setEntry(Main);
  return B.build();
}

void BM_InterpArithmeticLoop(benchmark::State &State) {
  Program P = arithProgram(10000);
  for (auto _ : State) {
    VirtualMachine VM(P);
    VM.addThread(P.entryMethod());
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_InterpArithmeticLoop);

void BM_InterpCallLoop(benchmark::State &State) {
  Program P = callProgram(10000);
  for (auto _ : State) {
    VirtualMachine VM(P);
    VM.addThread(P.entryMethod());
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_InterpCallLoop);

void BM_InterpInlinedCallLoop(benchmark::State &State) {
  Program P = callProgram(10000);
  MethodId Main = P.entryMethod();
  MethodId Leaf = P.findMethod("Main.leaf");
  ClassHierarchy CH(P);
  CostModel Model;
  OptimizingCompiler Compiler(P, CH, Model);
  StaticOracle Oracle(P, CH);
  for (auto _ : State) {
    VirtualMachine VM(P);
    VM.codeManager().install(
        Compiler.compile(Main, OptLevel::Opt2, Oracle));
    VM.addThread(Main);
    VM.run();
    benchmark::DoNotOptimize(VM.cycles());
  }
  State.SetItemsProcessed(State.iterations() * 10000);
  (void)Leaf;
}
BENCHMARK(BM_InterpInlinedCallLoop);

void BM_OptCompileFigureOneRunTest(benchmark::State &State) {
  FigureOneProgram F = makeFigureOne(1);
  ClassHierarchy CH(F.P);
  CostModel Model;
  OptimizingCompiler Compiler(F.P, CH, Model);
  InlineRuleSet Rules;
  {
    InliningRule R1;
    R1.T.Context = {{F.RunTest, F.GetSite1}};
    R1.T.Callee = F.Get;
    R1.Weight = 50;
    Rules.add(std::move(R1));
    InliningRule R2;
    R2.T.Context = {{F.Get, F.HashCodeSite}, {F.RunTest, F.GetSite1}};
    R2.T.Callee = F.MyKeyHashCode;
    R2.Weight = 50;
    Rules.add(std::move(R2));
  }
  ProfileDirectedOracle Oracle(F.P, CH, Rules);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Compiler.compile(F.RunTest, OptLevel::Opt2, Oracle));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_OptCompileFigureOneRunTest);

} // namespace

BENCHMARK_MAIN();
